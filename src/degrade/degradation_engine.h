#ifndef INSTANTDB_DEGRADE_DEGRADATION_ENGINE_H_
#define INSTANTDB_DEGRADE_DEGRADATION_ENGINE_H_

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/options.h"
#include "db/table.h"
#include "txn/transaction.h"

namespace instantdb {

/// \brief The degrader: tracks the earliest pending transition deadline
/// across every table and fires degradation steps as system transactions —
/// the component that makes degradation *timely* (paper §III).
///
/// Two drive modes:
///  - pumped: tests/benchmarks call `RunDue(now)` after advancing a
///    VirtualClock; everything is deterministic.
///  - background: `Start()` spawns a thread that sleeps on the Clock until
///    the next deadline (woken early when the deadline set changes).
///
/// Each step locks only the head of one (attribute, phase) store, so reader
/// interference is bounded (experiment B8); wait-die aborts are retried on
/// the next pass and surfaced in the stats.
class DegradationEngine {
 public:
  DegradationEngine(TransactionManager* tm, Clock* clock,
                    const DegradationOptions& options);
  ~DegradationEngine();
  DegradationEngine(const DegradationEngine&) = delete;
  DegradationEngine& operator=(const DegradationEngine&) = delete;

  void RegisterTable(Table* table);
  void UnregisterTable(TableId id);

  /// Runs every step whose deadline has passed at `now`; returns the total
  /// number of attribute values moved/removed.
  Result<size_t> RunDue(Micros now);

  /// Earliest pending deadline over all tables (kForever when idle).
  Micros NextDeadline() const;

  /// Background-thread mode.
  Status Start();
  void Stop();

  struct Stats {
    uint64_t passes = 0;
    uint64_t steps = 0;
    uint64_t values_moved = 0;
    uint64_t lock_aborts = 0;  // wait-die victims, retried next pass
  };
  Stats stats() const;

 private:
  void BackgroundLoop();

  TransactionManager* const tm_;
  Clock* const clock_;
  const DegradationOptions options_;

  mutable std::mutex mu_;
  std::map<TableId, Table*> tables_;
  Stats stats_;

  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace instantdb

#endif  // INSTANTDB_DEGRADE_DEGRADATION_ENGINE_H_
