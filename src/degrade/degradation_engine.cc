#include "degrade/degradation_engine.h"

#include "common/logging.h"

namespace instantdb {

DegradationEngine::DegradationEngine(TransactionManager* tm, Clock* clock,
                                     const DegradationOptions& options)
    : tm_(tm), clock_(clock), options_(options) {}

DegradationEngine::~DegradationEngine() { Stop(); }

void DegradationEngine::RegisterTable(Table* table) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_[table->id()] = table;
  clock_->WakeAll();  // the new table may carry an earlier deadline
}

void DegradationEngine::UnregisterTable(TableId id) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.erase(id);
}

Micros DegradationEngine::NextDeadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  Micros next = kForever;
  for (const auto& [id, table] : tables_) {
    next = std::min(next, table->NextDeadline());
  }
  return next;
}

Result<size_t> DegradationEngine::RunDue(Micros now) {
  size_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.passes;
  }
  // Keep stepping until no table has overdue work. Wait-die aborts are
  // bounded-retried: a conflicting reader commits and releases soon.
  constexpr int kMaxAbortRetries = 64;
  int aborts = 0;
  for (;;) {
    bool progressed = false;
    std::vector<Table*> snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [id, table] : tables_) snapshot.push_back(table);
    }
    for (Table* table : snapshot) {
      while (table->HasWorkAt(now)) {
        auto moved = table->RunDegradationStep(tm_, now,
                                               options_.step_batch_limit);
        if (!moved.ok()) {
          if (moved.status().IsAborted() && ++aborts <= kMaxAbortRetries) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.lock_aborts;
            break;  // retry this table on the next outer pass
          }
          return moved.status();
        }
        if (*moved == 0) break;
        total += *moved;
        progressed = true;
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.steps;
        stats_.values_moved += *moved;
      }
    }
    if (!progressed) break;
  }
  return total;
}

Status DegradationEngine::Start() {
  if (running_.exchange(true)) return Status::OK();
  thread_ = std::thread([this] { BackgroundLoop(); });
  return Status::OK();
}

void DegradationEngine::Stop() {
  if (!running_.exchange(false)) return;
  clock_->WakeAll();
  if (thread_.joinable()) thread_.join();
}

void DegradationEngine::BackgroundLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const Micros now = clock_->NowMicros();
    const Micros deadline = NextDeadline();
    if (deadline <= now) {
      auto moved = RunDue(now);
      if (!moved.ok()) {
        IDB_ERROR("degrader pass failed: %s", moved.status().ToString().c_str());
      }
      continue;
    }
    clock_->WaitUntil(deadline == kForever ? now + kMicrosPerHour : deadline);
  }
}

DegradationEngine::Stats DegradationEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace instantdb
