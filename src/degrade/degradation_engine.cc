#include "degrade/degradation_engine.h"

#include <algorithm>
#include <chrono>
#include <deque>

#include "common/logging.h"

namespace instantdb {

namespace {
/// Retry delays after a failed background pass: start at the floor, double
/// per consecutive failure, never exceed the cap. Without this the loop
/// would hot-spin on a still-overdue deadline while the disk stays broken.
constexpr Micros kPassBackoffFloor = 10'000;   // 10 ms
constexpr Micros kPassBackoffCap = 5'000'000;  // 5 s
}  // namespace

DegradationEngine::DegradationEngine(TransactionManager* tm, Clock* clock,
                                     const DegradationOptions& options,
                                     WorkerPool* pool)
    : tm_(tm), clock_(clock), options_(options), pool_(pool) {}

DegradationEngine::~DegradationEngine() { Stop(); }

void DegradationEngine::RegisterTable(Table* table) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_[table->id()] = table;
  clock_->WakeAll();  // the new table may carry an earlier deadline
}

void DegradationEngine::UnregisterTable(TableId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tables_.erase(id);
  }
  // Quiesce: an in-flight RunDue pass snapshotted raw Table* before the
  // erase; wait for it to drain so the caller can safely destroy the table.
  // (mu_ is released first — RunDue acquires mu_ while holding run_mu_
  // shared, so holding both here would deadlock.)
  std::unique_lock<std::shared_timed_mutex> quiesce(run_mu_);
}

bool DegradationEngine::Quiesce(Micros max_wait) {
  std::unique_lock<std::shared_timed_mutex> quiesce(run_mu_, std::defer_lock);
  if (!quiesce.try_lock_for(std::chrono::microseconds(max_wait))) return false;
  return true;
}

void DegradationEngine::EnqueueUrgent(TableId table, uint32_t partition) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    urgent_.emplace(table, partition);
  }
  clock_->WakeAll();  // wake the background coordinator for the repair
}

void DegradationEngine::TEST_FaultSkipPartition(TableId table,
                                                uint32_t partition, bool skip) {
  std::lock_guard<std::mutex> lock(mu_);
  if (skip) {
    fault_skip_.emplace(table, partition);
  } else {
    fault_skip_.erase({table, partition});
  }
}

size_t DegradationEngine::OverdueUnits(Micros now) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t overdue = 0;
  for (const auto& [id, table] : tables_) {
    for (uint32_t p = 0; p < table->num_partitions(); ++p) {
      if (table->PartitionHasWorkAt(p, now)) ++overdue;
    }
  }
  return overdue;
}

Micros DegradationEngine::NextDeadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  Micros next = kForever;
  for (const auto& [id, table] : tables_) {
    next = std::min(next, table->NextDeadline());
  }
  return next;
}

Result<size_t> DegradationEngine::RunDue(Micros now) {
  // One unit of schedulable work: a table partition with an overdue store
  // head. Units never share physical state or store locks, so the worker
  // pool drains them concurrently.
  struct Unit {
    Table* table;
    uint32_t partition;
  };
  constexpr int kMaxAbortRetries = 64;

  // Tables snapshotted below stay alive for the whole pass: UnregisterTable
  // blocks on this until we return.
  std::shared_lock<std::shared_timed_mutex> running(run_mu_);

  size_t total = 0;
  Stats delta;  // batched into stats_ once per RunDue, not per step
  std::atomic<int> abort_budget{kMaxAbortRetries};
  Status error;

  // Keep collecting and draining until no partition has overdue work.
  // Wait-die aborts are bounded-retried: a conflicting reader commits and
  // releases soon.
  for (;;) {
    std::vector<Unit> units;
    std::set<std::pair<TableId, uint32_t>> urgent;
    {
      std::lock_guard<std::mutex> lock(mu_);
      urgent.swap(urgent_);
      for (auto& [id, table] : tables_) {
        for (uint32_t p = 0; p < table->num_partitions(); ++p) {
          if (!fault_skip_.empty() && fault_skip_.count({id, p}) != 0) {
            continue;  // injected fault: leave this unit's work stale
          }
          if (table->PartitionHasWorkAt(p, now)) units.push_back({table, p});
        }
      }
    }
    if (!urgent.empty()) {
      // Audit-repair units jump the queue: workers claim units in order, so
      // moving them to the front of the round drains the proven-overdue
      // partitions before any merely-due one. Units not collected above
      // (no overdue work, unregistered table, injected fault) drop out of
      // the urgent set with the swap — stale repairs are self-cleaning.
      const auto urgent_end = std::stable_partition(
          units.begin(), units.end(), [&](const Unit& unit) {
            return urgent.count({unit.table->id(), unit.partition}) != 0;
          });
      delta.urgent_units +=
          static_cast<uint64_t>(urgent_end - units.begin());
    }
    if (units.empty()) break;
    delta.passes = 1;  // a pass only counts when some partition had due work

    std::atomic<uint64_t> steps{0};
    std::atomic<uint64_t> moved_round{0};
    std::atomic<uint64_t> aborts_round{0};
    std::mutex error_mu;

    // Step-grained work queue: a claim runs ONE bounded step, then requeues
    // the unit at the back while it still has work. Urgent units sit at the
    // front, so their first step is never stuck behind another partition's
    // deep backlog; aborted units also go to the back (the conflicting
    // reader gets time to commit before the retry).
    std::mutex queue_mu;
    std::deque<Unit> queue(units.begin(), units.end());

    auto drain = [&] {
      for (;;) {
        Unit unit;
        {
          std::lock_guard<std::mutex> lock(queue_mu);
          if (queue.empty()) return;
          unit = queue.front();
          queue.pop_front();
        }
        if (!unit.table->PartitionHasWorkAt(unit.partition, now)) continue;
        auto moved = unit.table->RunDegradationStep(
            tm_, now, options_.step_batch_limit, unit.partition);
        if (!moved.ok()) {
          if (moved.status().IsAborted() &&
              abort_budget.fetch_sub(1, std::memory_order_relaxed) > 0) {
            aborts_round.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(queue_mu);
            queue.push_back(unit);  // retry after the rest of the round
            continue;
          }
          std::lock_guard<std::mutex> lock(error_mu);
          if (error.ok()) error = moved.status();
          return;
        }
        if (*moved == 0) continue;  // spurious wake-up: drop, re-collect next
        steps.fetch_add(1, std::memory_order_relaxed);
        moved_round.fetch_add(*moved, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(queue_mu);
        queue.push_back(unit);  // may still have work past the step limit
      }
    };

    const size_t workers = std::min<size_t>(
        std::max<size_t>(options_.worker_threads, 1), units.size());
    if (workers <= 1) {
      drain();
    } else if (pool_ != nullptr) {
      // Borrow helpers from the shared pool (never blocks; a busy pool just
      // yields fewer helpers) and drain alongside them. Priority dispatch:
      // the pool's reserved tokens (WorkerPool::SetReserved, sized by
      // ServiceOptions::reserved_degradation_workers) are visible only
      // here, so overdue privacy steps fan out even when foreground scans
      // hold every normal token — the degradation priority floor.
      WorkerPool::Ticket ticket;
      pool_->TryDispatch(workers - 1, [&](size_t) { drain(); }, &ticket,
                         /*priority=*/true);
      drain();
      pool_->Wait(&ticket);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (size_t i = 0; i < workers; ++i) threads.emplace_back(drain);
      for (std::thread& worker : threads) worker.join();
    }

    delta.steps += steps.load();
    delta.values_moved += moved_round.load();
    delta.lock_aborts += aborts_round.load();
    total += moved_round.load();
    if (!error.ok()) break;
    // No progress this round (only aborts or spurious wake-ups): leave the
    // remainder for the next RunDue rather than spinning.
    if (moved_round.load() == 0) break;
  }

  if (delta.passes != 0 || delta.lock_aborts != 0 || delta.urgent_units != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.passes += delta.passes;
    stats_.steps += delta.steps;
    stats_.values_moved += delta.values_moved;
    stats_.lock_aborts += delta.lock_aborts;
    stats_.urgent_units += delta.urgent_units;
  }
  if (!error.ok()) return error;
  return total;
}

Status DegradationEngine::Start() {
  if (running_.exchange(true)) return Status::OK();
  thread_ = std::thread([this] { BackgroundLoop(); });
  return Status::OK();
}

void DegradationEngine::Stop() {
  if (!running_.exchange(false)) return;
  clock_->WakeAll();
  if (thread_.joinable()) thread_.join();
}

void DegradationEngine::BackgroundLoop() {
  Micros backoff = 0;  // current retry delay; 0 while passes succeed
  for (;;) {
    // Token before the running_ check and the deadline computation: a
    // Stop() or a RegisterTable()'s earlier-deadline WakeAll landing after
    // this line expires the token, so WaitUntil returns immediately instead
    // of sleeping through the wake (the missed-wakeup window between
    // deciding to sleep and parking).
    const uint64_t token = clock_->WakeToken();
    if (!running_.load(std::memory_order_acquire)) break;
    const Micros now = clock_->NowMicros();
    const Micros deadline = NextDeadline();
    if (deadline <= now) {
      auto moved = RunDue(now);
      if (moved.ok()) {
        backoff = 0;
        continue;
      }
      IDB_ERROR("degrader pass failed: %s", moved.status().ToString().c_str());
      // A failed pass leaves the deadline overdue; looping straight back
      // would hot-spin against a broken disk. Retry with capped exponential
      // backoff — the deadline stays overdue, so the pass that finds the
      // disk recovered immediately drains the backlog.
      backoff = backoff == 0 ? kPassBackoffFloor
                             : std::min(backoff * 2, kPassBackoffCap);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (first_error_.ok() && moved.status().IsIOError()) {
          first_error_ = moved.status();
        }
        if (moved.status().IsIOError() || moved.status().IsBusy()) {
          ++stats_.io_retries;
        }
      }
      clock_->WaitUntil(now + backoff, token);
      continue;
    }
    clock_->WaitUntil(deadline == kForever ? now + kMicrosPerHour : deadline,
                      token);
  }
}

DegradationEngine::Stats DegradationEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace instantdb
