#include "query/prepared_statement.h"

#include "query/cursor.h"
#include "query/executor.h"

namespace instantdb {

PreparedStatement::PreparedStatement(Session* session, StatementAst ast)
    : session_(session),
      template_(std::move(ast)),
      bound_(template_),
      params_(CountParameters(template_)),
      is_bound_(params_.size(), false) {}

Status PreparedStatement::Bind(size_t index, Value value) {
  if (index >= params_.size()) {
    return Status::InvalidArgument(
        "parameter index out of range (statement has " +
        std::to_string(params_.size()) + " markers)");
  }
  params_[index] = std::move(value);
  is_bound_[index] = true;
  return Status::OK();
}

Status PreparedStatement::BindAll(std::vector<Value> values) {
  if (values.size() != params_.size()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(params_.size()) + " parameters, got " +
        std::to_string(values.size()));
  }
  params_ = std::move(values);
  is_bound_.assign(params_.size(), true);
  return Status::OK();
}

void PreparedStatement::ClearBindings() {
  params_.assign(params_.size(), Value::Null());
  is_bound_.assign(params_.size(), false);
}

Result<const StatementAst*> PreparedStatement::BindAst() {
  for (size_t i = 0; i < is_bound_.size(); ++i) {
    if (!is_bound_[i]) {
      return Status::InvalidArgument("parameter " + std::to_string(i) +
                                     " is not bound");
    }
  }
  // Substitute into the reusable bound copy: predicates and insert values
  // keep their positions, so only marker slots are rewritten.
  auto substitute_predicates = [&](std::vector<PredicateAst>* where) {
    for (PredicateAst& pred : *where) {
      if (pred.param >= 0) pred.value = params_[pred.param];
      if (pred.param2 >= 0) pred.value2 = params_[pred.param2];
    }
  };
  if (auto* select = std::get_if<SelectAst>(&bound_)) {
    substitute_predicates(&select->where);
  } else if (auto* insert = std::get_if<InsertAst>(&bound_)) {
    for (size_t i = 0; i < insert->params.size(); ++i) {
      if (insert->params[i] >= 0) {
        insert->values[i] = params_[insert->params[i]];
      }
    }
  } else if (auto* del = std::get_if<DeleteAst>(&bound_)) {
    substitute_predicates(&del->where);
  }
  return &bound_;
}

Result<QueryResult> PreparedStatement::Execute() {
  IDB_ASSIGN_OR_RETURN(const StatementAst* statement, BindAst());
  return ExecuteStatement(session_, *statement);
}

Result<std::unique_ptr<Cursor>> PreparedStatement::ExecuteCursor() {
  IDB_ASSIGN_OR_RETURN(const StatementAst* statement, BindAst());
  return Cursor::Open(session_, *statement);
}

}  // namespace instantdb
