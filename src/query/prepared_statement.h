#ifndef INSTANTDB_QUERY_PREPARED_STATEMENT_H_
#define INSTANTDB_QUERY_PREPARED_STATEMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/ast.h"
#include "query/session.h"

namespace instantdb {

class Cursor;

/// \brief Parse-once / execute-many statement handle.
///
/// `Session::Prepare` parses a statement containing `?` parameter markers
/// (numbered 0-based in order of appearance) once; each Execute substitutes
/// the currently bound parameters and runs the statement without re-lexing
/// or re-parsing — the hot path for ingest and benchmark loops:
///
/// \code
///   auto stmt = session.Prepare("INSERT INTO pings VALUES (?, ?)");
///   for (const Ping& p : batch) {
///     (*stmt)->Bind(0, Value::String(p.user));
///     (*stmt)->Bind(1, Value::String(p.address));
///     auto result = (*stmt)->Execute();
///   }
/// \endcode
///
/// Bindings persist across Execute calls (rebind only what changes). A
/// statement is bound to the Session that prepared it and must not outlive
/// it; accuracy purposes declared on the session apply at execution time,
/// not preparation time.
class PreparedStatement {
 public:
  /// Number of `?` markers in the statement.
  size_t parameter_count() const { return params_.size(); }

  /// Binds parameter `index` (0-based). InvalidArgument when out of range.
  Status Bind(size_t index, Value value);

  /// Binds all parameters at once; `values.size()` must equal
  /// parameter_count().
  Status BindAll(std::vector<Value> values);

  /// Drops all bindings (Execute then requires a fresh BindAll/Bind set).
  void ClearBindings();

  /// Executes with the current bindings, materializing the result.
  Result<QueryResult> Execute();

  /// Streaming execution: opens a cursor over the result (see
  /// query/cursor.h).
  Result<std::unique_ptr<Cursor>> ExecuteCursor();

 private:
  friend class Session;

  PreparedStatement(Session* session, StatementAst ast);

  /// The parsed template with current bindings substituted. Fails if any
  /// marker is unbound.
  Result<const StatementAst*> BindAst();

  Session* const session_;
  const StatementAst template_;
  StatementAst bound_;        // template with parameters substituted
  std::vector<Value> params_;
  std::vector<bool> is_bound_;
};

}  // namespace instantdb

#endif  // INSTANTDB_QUERY_PREPARED_STATEMENT_H_
