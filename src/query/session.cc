#include "query/session.h"

#include <algorithm>

#include "common/strings.h"
#include "query/cursor.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/prepared_statement.h"

namespace instantdb {

const TableDef* ResolveTableName(const Catalog& catalog,
                                 const std::string& name, bool allow_prefix) {
  const TableDef* prefix_match = nullptr;
  for (const TableDef* def : catalog.tables()) {
    if (EqualsIgnoreCase(def->name, name)) return def;
    if (allow_prefix && def->name.size() > name.size() &&
        EqualsIgnoreCase(def->name.substr(0, name.size()), name)) {
      prefix_match = def;
    }
  }
  return prefix_match;
}

int ResolveColumnName(const Schema& schema, const std::string& name) {
  const int exact = schema.FindColumn(name);
  if (exact >= 0) return exact;
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (EqualsIgnoreCase(schema.column(i).name, name)) return i;
  }
  return -1;
}

std::string QueryResult::ToString() const {
  if (statement != StatementKind::kSelect) {
    if (statement == StatementKind::kCommand) return "OK\n";
    std::string out =
        StringPrintf("%llu row(s) affected",
                     static_cast<unsigned long long>(affected_rows));
    if (last_insert_id != kInvalidRowId) {
      out += StringPrintf(", last insert id %llu",
                          static_cast<unsigned long long>(last_insert_id));
    }
    out += '\n';
    return out;
  }
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  for (const auto& row : display) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto line = [&](char fill, char sep) {
    std::string out;
    out.push_back(sep);
    for (size_t w : widths) {
      out.append(w + 2, fill);
      out.push_back(sep);
    }
    out.push_back('\n');
    return out;
  };
  std::string out = line('-', '+');
  out.push_back('|');
  for (size_t c = 0; c < columns.size(); ++c) {
    out += ' ' + columns[c] + std::string(widths[c] - columns[c].size(), ' ') + " |";
  }
  out.push_back('\n');
  out += line('-', '+');
  for (const auto& row : display) {
    out.push_back('|');
    for (size_t c = 0; c < row.size(); ++c) {
      out += ' ' + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    out.push_back('\n');
  }
  out += line('-', '+');
  out += StringPrintf("%zu row(s)\n", display.size());
  return out;
}

namespace {

/// `?` markers only make sense through Session::Prepare; executing them
/// directly would silently run with NULL placeholders.
Status RejectParameterMarkers(const StatementAst& statement) {
  if (CountParameters(statement) > 0) {
    return Status::InvalidArgument(
        "statement has ? parameter markers; use Session::Prepare");
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> Session::Execute(const std::string& sql) {
  IDB_ASSIGN_OR_RETURN(StatementAst statement, ParseStatement(sql));
  IDB_RETURN_IF_ERROR(RejectParameterMarkers(statement));
  return ExecuteStatement(this, statement);
}

Result<std::unique_ptr<Cursor>> Session::ExecuteCursor(const std::string& sql) {
  IDB_ASSIGN_OR_RETURN(StatementAst statement, ParseStatement(sql));
  IDB_RETURN_IF_ERROR(RejectParameterMarkers(statement));
  return Cursor::Open(this, statement);
}

Result<std::unique_ptr<PreparedStatement>> Session::Prepare(
    const std::string& sql) {
  IDB_ASSIGN_OR_RETURN(StatementAst statement, ParseStatement(sql));
  return std::unique_ptr<PreparedStatement>(
      new PreparedStatement(this, std::move(statement)));
}

Status Session::DeclarePurpose(
    const std::string& name,
    const std::vector<DeclarePurposeAst::Clause>& clauses) {
  std::map<std::pair<TableId, int>, int> levels;
  for (const DeclarePurposeAst::Clause& clause : clauses) {
    std::vector<const TableDef*> candidates;
    if (!clause.table.empty()) {
      const TableDef* def = ResolveTableName(db_->catalog(), clause.table,
                                             /*allow_prefix=*/true);
      if (def == nullptr) {
        return Status::NotFound("unknown table in purpose: " + clause.table);
      }
      candidates.push_back(def);
    } else {
      for (const TableDef* def : db_->catalog().tables()) {
        candidates.push_back(def);
      }
    }
    bool bound = false;
    for (const TableDef* def : candidates) {
      const int col = ResolveColumnName(def->schema, clause.column);
      if (col < 0) continue;
      const ColumnDef& column = def->schema.column(col);
      if (column.kind != ColumnKind::kDegradable) {
        return Status::InvalidArgument("accuracy level declared on stable column " +
                                       clause.column);
      }
      IDB_ASSIGN_OR_RETURN(int level,
                           column.hierarchy->LevelForSpec(clause.spec));
      levels[{def->id, col}] = level;
      bound = true;
    }
    if (!bound) {
      return Status::NotFound("unknown column in purpose: " + clause.column);
    }
  }
  purposes_[name] = std::move(levels);
  active_ = name;
  return Status::OK();
}

Status Session::UsePurpose(const std::string& name) {
  if (purposes_.count(name) == 0) {
    return Status::NotFound("undeclared purpose: " + name);
  }
  active_ = name;
  return Status::OK();
}

int Session::AccuracyFor(TableId table, int column) const {
  if (active_.empty()) return 0;
  auto purpose = purposes_.find(active_);
  if (purpose == purposes_.end()) return 0;
  auto it = purpose->second.find({table, column});
  return it == purpose->second.end() ? 0 : it->second;
}

}  // namespace instantdb
