#include "query/parser.h"

#include <algorithm>
#include <cstdlib>

#include "common/strings.h"
#include "query/lexer.h"

namespace instantdb {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatementAst> Parse() {
    if (MatchKeyword("DECLARE")) return ParseDeclarePurpose();
    if (MatchKeyword("USE")) return ParseUsePurpose();
    if (MatchKeyword("SELECT")) return ParseSelect();
    if (MatchKeyword("INSERT")) return ParseInsert();
    if (MatchKeyword("DELETE")) return ParseDelete();
    return Error("expected DECLARE, USE, SELECT, INSERT or DELETE");
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const char* kw) const {
    return Peek().Is(TokenType::kIdentifier) &&
           EqualsIgnoreCase(Peek().text, kw);
  }
  bool MatchKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  bool MatchSymbol(const char* symbol) {
    if (Peek().Is(TokenType::kSymbol) && Peek().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(StringPrintf(
        "parse error near '%s' (position %zu): %s", Peek().text.c_str(),
        Peek().position, message.c_str()));
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) return Error(std::string("expected ") + kw);
    return Status::OK();
  }

  Status ExpectSymbol(const char* symbol) {
    if (!MatchSymbol(symbol)) {
      return Error(std::string("expected '") + symbol + "'");
    }
    return Status::OK();
  }

  Result<Value> ParseLiteral() {
    if (Peek().Is(TokenType::kNumber)) {
      const std::string text = Advance().text;
      if (text.find('.') != std::string::npos) {
        return Value::Double(std::strtod(text.c_str(), nullptr));
      }
      return Value::Int64(std::strtoll(text.c_str(), nullptr, 10));
    }
    if (Peek().Is(TokenType::kString)) {
      return Value::String(Advance().text);
    }
    if (MatchKeyword("TRUE")) return Value::Bool(true);
    if (MatchKeyword("FALSE")) return Value::Bool(false);
    if (MatchKeyword("NULL")) return Value::Null();
    return Error("expected a literal");
  }

  /// A literal, or a `?` parameter marker. Markers are numbered 0-based in
  /// order of appearance; `*param` receives the ordinal (-1 for a literal)
  /// and the returned Value is a NULL placeholder until binding.
  Result<Value> ParseLiteralOrParam(int* param) {
    if (MatchSymbol("?")) {
      *param = num_params_++;
      return Value::Null();
    }
    *param = -1;
    return ParseLiteral();
  }

  Result<StatementAst> ParseDeclarePurpose() {
    IDB_RETURN_IF_ERROR(ExpectKeyword("PURPOSE"));
    DeclarePurposeAst ast;
    IDB_ASSIGN_OR_RETURN(ast.name, ExpectIdentifier("purpose name"));
    IDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
    IDB_RETURN_IF_ERROR(ExpectKeyword("ACCURACY"));
    IDB_RETURN_IF_ERROR(ExpectKeyword("LEVEL"));
    do {
      DeclarePurposeAst::Clause clause;
      IDB_ASSIGN_OR_RETURN(clause.spec, ExpectIdentifier("accuracy level"));
      IDB_RETURN_IF_ERROR(ExpectKeyword("FOR"));
      IDB_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier("column"));
      if (MatchSymbol(".")) {
        clause.table = first;
        IDB_ASSIGN_OR_RETURN(clause.column, ExpectIdentifier("column"));
      } else {
        clause.column = first;  // bare column: binder resolves the table
      }
      ast.clauses.push_back(std::move(clause));
    } while (MatchSymbol(","));
    IDB_RETURN_IF_ERROR(ExpectEnd());
    return StatementAst(std::move(ast));
  }

  Result<StatementAst> ParseUsePurpose() {
    IDB_RETURN_IF_ERROR(ExpectKeyword("PURPOSE"));
    UsePurposeAst ast;
    IDB_ASSIGN_OR_RETURN(ast.name, ExpectIdentifier("purpose name"));
    IDB_RETURN_IF_ERROR(ExpectEnd());
    return StatementAst(std::move(ast));
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    static const std::pair<const char*, AggregateKind> kAggregates[] = {
        {"COUNT", AggregateKind::kCount}, {"SUM", AggregateKind::kSum},
        {"AVG", AggregateKind::kAvg},     {"MIN", AggregateKind::kMin},
        {"MAX", AggregateKind::kMax}};
    for (const auto& [name, kind] : kAggregates) {
      if (PeekKeyword(name) && tokens_[pos_ + 1].Is(TokenType::kSymbol) &&
          tokens_[pos_ + 1].text == "(") {
        ++pos_;  // aggregate name
        ++pos_;  // '('
        item.aggregate = kind;
        if (kind == AggregateKind::kCount && MatchSymbol("*")) {
          // COUNT(*)
        } else {
          IDB_ASSIGN_OR_RETURN(item.column, ExpectIdentifier("column"));
        }
        IDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        return item;
      }
    }
    IDB_ASSIGN_OR_RETURN(item.column, ExpectIdentifier("column"));
    return item;
  }

  Result<std::vector<PredicateAst>> ParseWhere() {
    std::vector<PredicateAst> predicates;
    do {
      PredicateAst pred;
      IDB_ASSIGN_OR_RETURN(pred.column, ExpectIdentifier("column"));
      if (MatchKeyword("LIKE")) {
        pred.op = ComparisonOp::kLike;
        IDB_ASSIGN_OR_RETURN(pred.value, ParseLiteralOrParam(&pred.param));
        if (pred.param < 0 && pred.value.type() != ValueType::kString) {
          return Error("LIKE needs a string pattern");
        }
      } else if (MatchKeyword("BETWEEN")) {
        pred.op = ComparisonOp::kBetween;
        IDB_ASSIGN_OR_RETURN(pred.value, ParseLiteralOrParam(&pred.param));
        IDB_RETURN_IF_ERROR(ExpectKeyword("AND"));
        IDB_ASSIGN_OR_RETURN(pred.value2, ParseLiteralOrParam(&pred.param2));
      } else if (Peek().Is(TokenType::kSymbol)) {
        const std::string op = Advance().text;
        if (op == "=") {
          pred.op = ComparisonOp::kEq;
        } else if (op == "<>") {
          pred.op = ComparisonOp::kNe;
        } else if (op == "<") {
          pred.op = ComparisonOp::kLt;
        } else if (op == "<=") {
          pred.op = ComparisonOp::kLe;
        } else if (op == ">") {
          pred.op = ComparisonOp::kGt;
        } else if (op == ">=") {
          pred.op = ComparisonOp::kGe;
        } else {
          return Error("unknown comparison operator");
        }
        IDB_ASSIGN_OR_RETURN(pred.value, ParseLiteralOrParam(&pred.param));
      } else {
        return Error("expected comparison operator");
      }
      predicates.push_back(std::move(pred));
    } while (MatchKeyword("AND"));
    return predicates;
  }

  Result<StatementAst> ParseSelect() {
    SelectAst ast;
    if (MatchSymbol("*")) {
      ast.star = true;
    } else {
      do {
        IDB_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        ast.items.push_back(std::move(item));
      } while (MatchSymbol(","));
    }
    IDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    IDB_ASSIGN_OR_RETURN(ast.table, ExpectIdentifier("table"));
    if (MatchKeyword("WHERE")) {
      IDB_ASSIGN_OR_RETURN(ast.where, ParseWhere());
    }
    if (MatchKeyword("GROUP")) {
      IDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      IDB_ASSIGN_OR_RETURN(ast.group_by, ExpectIdentifier("column"));
    }
    IDB_RETURN_IF_ERROR(ExpectEnd());
    return StatementAst(std::move(ast));
  }

  Result<StatementAst> ParseInsert() {
    IDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertAst ast;
    IDB_ASSIGN_OR_RETURN(ast.table, ExpectIdentifier("table"));
    IDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    IDB_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      int param = -1;
      IDB_ASSIGN_OR_RETURN(Value value, ParseLiteralOrParam(&param));
      ast.values.push_back(std::move(value));
      ast.params.push_back(param);
    } while (MatchSymbol(","));
    IDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    IDB_RETURN_IF_ERROR(ExpectEnd());
    return StatementAst(std::move(ast));
  }

  Result<StatementAst> ParseDelete() {
    IDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteAst ast;
    IDB_ASSIGN_OR_RETURN(ast.table, ExpectIdentifier("table"));
    if (MatchKeyword("WHERE")) {
      IDB_ASSIGN_OR_RETURN(ast.where, ParseWhere());
    }
    IDB_RETURN_IF_ERROR(ExpectEnd());
    return StatementAst(std::move(ast));
  }

  Status ExpectEnd() {
    if (!Peek().Is(TokenType::kEnd)) return Error("trailing input");
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int num_params_ = 0;
};

}  // namespace

Result<StatementAst> ParseStatement(const std::string& sql) {
  IDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

int CountParameters(const StatementAst& statement) {
  int max_ordinal = -1;
  auto visit_predicates = [&](const std::vector<PredicateAst>& where) {
    for (const PredicateAst& pred : where) {
      max_ordinal = std::max({max_ordinal, pred.param, pred.param2});
    }
  };
  if (const auto* select = std::get_if<SelectAst>(&statement)) {
    visit_predicates(select->where);
  } else if (const auto* insert = std::get_if<InsertAst>(&statement)) {
    for (int param : insert->params) max_ordinal = std::max(max_ordinal, param);
  } else if (const auto* del = std::get_if<DeleteAst>(&statement)) {
    visit_predicates(del->where);
  }
  return max_ordinal + 1;
}

}  // namespace instantdb
