#include "query/lexer.h"

#include <cctype>
#include <cstring>

#include "common/strings.h"

namespace instantdb {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;  // -- comment
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      token.type = TokenType::kIdentifier;
      token.text = sql.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       (sql[j] == '.' && !seen_dot))) {
        if (sql[j] == '.') seen_dot = true;
        ++j;
      }
      token.type = TokenType::kNumber;
      token.text = sql.substr(i, j - i);
      i = j;
    } else if (c == '\'' || c == '"') {
      const char quote = c;
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == quote) {
          if (j + 1 < n && sql[j + 1] == quote) {  // '' escape
            text.push_back(quote);
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StringPrintf("unterminated string literal at %zu", i));
      }
      token.type = TokenType::kString;
      token.text = std::move(text);
      i = j;
    } else if (c == '<' && i + 1 < n && (sql[i + 1] == '=' || sql[i + 1] == '>')) {
      token.type = TokenType::kSymbol;
      token.text = sql.substr(i, 2);
      i += 2;
    } else if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      token.type = TokenType::kSymbol;
      token.text = ">=";
      i += 2;
    } else if (std::strchr("=<>(),.*;?", c) != nullptr) {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
      if (token.text == ";") continue;  // statement terminator is noise
    } else {
      return Status::InvalidArgument(
          StringPrintf("unexpected character '%c' at %zu", c, i));
    }
    tokens.push_back(std::move(token));
  }
  tokens.push_back(Token{TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace instantdb
