#include "query/plan.h"

#include <algorithm>
#include <cctype>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <mutex>

#include "common/cancel.h"
#include "common/strings.h"
#include "query/predicate.h"
#include "util/morsel.h"
#include "util/parallel.h"
#include "util/worker_pool.h"

namespace instantdb {
namespace plan {

namespace {

/// Batch size of the materializing (SnapshotScanSource / aggregate
/// pushdown) morsel drains: large enough that latch reacquisition is noise,
/// small enough that a batch never holds a partition latch for long.
constexpr size_t kMaterializedScanBatchRows = 1024;

/// Statement budget captured when a source opens: every scan path probes
/// the deadline and the CancelToken (ScanOptions) at morsel-claim and batch
/// granularity, so a doomed statement stops within one batch, releases its
/// workers (pool tokens are waited out by the normal error paths), and
/// fails partial-safe with Timeout/Aborted.
struct ScanBudget {
  const Clock* clock = nullptr;
  Micros deadline = 0;
  const CancelToken* cancel = nullptr;

  static ScanBudget Of(Session* session) {
    return ScanBudget{session->db()->clock(),
                      session->scan_options().deadline,
                      session->scan_options().cancel};
  }
  Status Check() const {
    if (deadline == 0 && cancel == nullptr) return Status::OK();
    return CheckStatementBudget(clock, deadline, cancel);
  }
};

/// Folds one scan's ScanDeltas into the database's atomic counters — once
/// per batch, outside any partition latch.
void FoldDeltas(Database::ScanCounters* counters, const ScanDeltas& deltas) {
  counters->rows.fetch_add(deltas.rows_scanned, std::memory_order_relaxed);
  counters->rows_prefiltered.fetch_add(deltas.rows_prefiltered,
                                       std::memory_order_relaxed);
  counters->store_probes_issued.fetch_add(deltas.probes_issued,
                                          std::memory_order_relaxed);
  counters->store_probes_skipped.fetch_add(deltas.probes_skipped,
                                           std::memory_order_relaxed);
}

/// Finds the level of a literal value in a hierarchy (tree labels can sit at
/// any level; interval bucket bounds at several — prefer the leaf).
Result<int> LiteralLevel(const DomainHierarchy& hierarchy, const Value& value) {
  for (int level = 0; level < hierarchy.height(); ++level) {
    if (hierarchy.ValidateAtLevel(value, level).ok()) return level;
  }
  return Status::InvalidArgument("literal '" + value.ToString() +
                                 "' is not a value of domain " +
                                 hierarchy.name());
}

/// Case-insensitive label lookup across all levels of a tree domain (the
/// paper's `LIKE "%FRANCE%"` names the node "France").
Result<std::pair<Value, int>> ResolveLabel(const DomainHierarchy& hierarchy,
                                           const std::string& label) {
  const auto* tree = dynamic_cast<const GeneralizationTree*>(&hierarchy);
  if (tree == nullptr) {
    return Status::NotFound("not a tree domain");
  }
  for (int level = 0; level < tree->height(); ++level) {
    for (const std::string& candidate : tree->LabelsAtLevel(level)) {
      if (EqualsIgnoreCase(candidate, label)) {
        return std::make_pair(Value::String(candidate), level);
      }
    }
  }
  return Status::NotFound("no label '" + label + "' in domain " +
                          hierarchy.name());
}

/// Parses the paper's bucket literal syntax 'lo-hi' for interval domains.
bool ParseBucketLiteral(const std::string& text, int64_t* lo, int64_t* hi) {
  const size_t dash = text.find('-', 1);
  if (dash == std::string::npos) return false;
  char* end = nullptr;
  *lo = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + dash) return false;
  *hi = std::strtoll(text.c_str() + dash + 1, &end, 10);
  return *end == '\0';
}

Status BindPredicate(const Schema& schema, Session* session, TableId table_id,
                     const PredicateAst& ast, BoundPredicate* out) {
  out->column = ResolveColumnName(schema, ast.column);
  if (out->column < 0) {
    return Status::InvalidArgument("unknown column: " + ast.column);
  }
  const ColumnDef& column = schema.column(out->column);
  out->degradable = column.kind == ColumnKind::kDegradable;
  out->op = ast.op;
  out->value = ast.value;
  out->value2 = ast.value2;
  if (!out->degradable) {
    if (ast.op == ComparisonOp::kLike) {
      if (ast.value.type() != ValueType::kString) {
        return Status::InvalidArgument("LIKE needs a string pattern");
      }
      std::string pattern = ast.value.str();
      out->like_prefix_wildcard = StartsWith(pattern, "%");
      out->like_suffix_wildcard = EndsWith(pattern, "%") && pattern.size() > 1;
      if (out->like_prefix_wildcard) pattern.erase(0, 1);
      if (out->like_suffix_wildcard && !pattern.empty()) pattern.pop_back();
      out->like_core = pattern;
    }
    return Status::OK();
  }

  const DomainHierarchy& hierarchy = *column.hierarchy;
  out->level = session->AccuracyFor(table_id, out->column);

  switch (ast.op) {
    case ComparisonOp::kEq:
    case ComparisonOp::kNe: {
      Value literal = ast.value;
      if (hierarchy.value_type() == ValueType::kInt64 &&
          literal.type() == ValueType::kString) {
        // '2000-3000' bucket syntax: the width names the level.
        int64_t lo, hi;
        if (!ParseBucketLiteral(literal.str(), &lo, &hi)) {
          return Status::InvalidArgument("bad bucket literal: " +
                                         literal.str());
        }
        const auto* interval =
            static_cast<const IntervalHierarchy*>(&hierarchy);
        IDB_ASSIGN_OR_RETURN(out->literal_level,
                             interval->LevelForWidth(hi - lo));
        literal = Value::Int64(lo);
      } else {
        IDB_ASSIGN_OR_RETURN(out->literal_level,
                             LiteralLevel(hierarchy, literal));
      }
      IDB_ASSIGN_OR_RETURN(out->literal_interval,
                           hierarchy.LeafRange(literal, out->literal_level));
      out->value = literal;
      out->index_usable = ast.op == ComparisonOp::kEq;
      return Status::OK();
    }
    case ComparisonOp::kLike: {
      if (ast.value.type() != ValueType::kString) {
        return Status::InvalidArgument("LIKE needs a string pattern");
      }
      std::string pattern = ast.value.str();
      out->like_prefix_wildcard = StartsWith(pattern, "%");
      out->like_suffix_wildcard = EndsWith(pattern, "%") && pattern.size() > 1;
      if (out->like_prefix_wildcard) pattern.erase(0, 1);
      if (out->like_suffix_wildcard && !pattern.empty()) pattern.pop_back();
      out->like_core = pattern;
      // `%France%` resolves to the France node: evaluated (and indexed) as
      // an equality against that node's subtree.
      auto label = ResolveLabel(hierarchy, pattern);
      if (label.ok()) {
        out->value = label->first;
        out->literal_level = label->second;
        auto interval = hierarchy.LeafRange(label->first, label->second);
        if (interval.ok()) {
          out->literal_interval = *interval;
          out->index_usable = true;
        }
      }
      return Status::OK();
    }
    case ComparisonOp::kBetween: {
      if (hierarchy.value_type() != ValueType::kInt64) {
        return Status::NotSupported("BETWEEN on categorical domains");
      }
      if (ast.value.type() != ValueType::kInt64 ||
          ast.value2.type() != ValueType::kInt64) {
        return Status::InvalidArgument("BETWEEN bounds must be integers");
      }
      // Bounds generalize to the demanded level's buckets.
      IDB_ASSIGN_OR_RETURN(Value lo,
                           hierarchy.Generalize(ast.value, 0, out->level));
      IDB_ASSIGN_OR_RETURN(Value hi,
                           hierarchy.Generalize(ast.value2, 0, out->level));
      out->value = lo;
      out->value2 = hi;
      out->literal_level = out->level;
      IDB_ASSIGN_OR_RETURN(out->literal_interval,
                           hierarchy.LeafRange(lo, out->level));
      IDB_ASSIGN_OR_RETURN(out->literal_interval2,
                           hierarchy.LeafRange(hi, out->level));
      out->index_usable = true;
      return Status::OK();
    }
    case ComparisonOp::kLt:
    case ComparisonOp::kLe:
    case ComparisonOp::kGt:
    case ComparisonOp::kGe: {
      if (hierarchy.value_type() != ValueType::kInt64) {
        return Status::NotSupported(
            "ordering predicates on categorical domains");
      }
      if (ast.value.type() != ValueType::kInt64) {
        return Status::InvalidArgument("ordering literal must be an integer");
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

/// Evaluates one bound predicate against a value already generalized to
/// `value_level` (== min(k, stored level) under include_coarser).
bool EvalDegradablePredicate(const DomainHierarchy& hierarchy,
                             const BoundPredicate& pred, const Value& value,
                             int value_level) {
  switch (pred.op) {
    case ComparisonOp::kEq:
    case ComparisonOp::kNe: {
      auto row_interval = hierarchy.LeafRange(value, value_level);
      if (!row_interval.ok()) return false;
      const bool contains = pred.literal_interval.Contains(*row_interval);
      return pred.op == ComparisonOp::kEq ? contains : !contains;
    }
    case ComparisonOp::kLike: {
      if (pred.literal_level >= 0) {
        auto row_interval = hierarchy.LeafRange(value, value_level);
        return row_interval.ok() &&
               pred.literal_interval.Contains(*row_interval);
      }
      return MatchLike(hierarchy.DisplayValue(value, value_level), pred);
    }
    case ComparisonOp::kBetween: {
      auto row_interval = hierarchy.LeafRange(value, value_level);
      if (!row_interval.ok()) return false;
      return row_interval->lo >= pred.literal_interval.lo &&
             row_interval->hi <= pred.literal_interval2.hi;
    }
    case ComparisonOp::kLt:
      return value.int64() < pred.value.int64();
    case ComparisonOp::kLe:
      return value.int64() <= pred.value.int64();
    case ComparisonOp::kGt:
      // Bucket lower-bound comparison: a bucket qualifies when it lies
      // entirely above the literal is too strict for coarse levels; we
      // compare lower bounds (documented choice).
      return value.int64() > pred.value.int64();
    case ComparisonOp::kGe:
      return value.int64() >= pred.value.int64();
  }
  return false;
}

/// Streams the heap sequentially in batches of `batch_rows` RowViews,
/// walking the table's partitions in order (the resume position carries the
/// current partition plus the heap position inside it) and re-acquiring one
/// partition's shared latch per batch so a slow consumer never blocks
/// writers or the degrader on any partition. Isolation is
/// snapshot-per-batch (standard cursor semantics): rows inserted, deleted
/// or degraded between two pulls may or may not be observed. This is the
/// resolved-parallelism-1 path: no threads, rows in (partition, heap)
/// order.
class HeapScanSource : public RowSource {
 public:
  HeapScanSource(Session* session, const BoundQuery& query, size_t batch_rows)
      : read_options_(session->read_options()),
        counters_(session->db()->scan_counters()),
        budget_(ScanBudget::Of(session)),
        query_(query),
        batch_rows_(batch_rows),
        pushdown_(session->scan_options().pushdown),
        filter_(query.table->schema(), query.predicates) {
    spec_.filter = filter_.empty() ? nullptr : &filter_;
    spec_.need_degradable = !query.referenced_degradable.empty();
  }

  Result<bool> NextBatch(EvaluatedBatch* out) override {
    out->Clear();
    // Keep pulling heap batches until one yields a qualifying row (a batch
    // may be fully filtered by σ) or the scan ends.
    while (out->size == 0) {
      if (done_) return false;
      IDB_RETURN_IF_ERROR(budget_.Check());
      if (pushdown_) {
        IDB_RETURN_IF_ERROR(PullPushdownBatch());
      } else {
        views_.clear();
        IDB_RETURN_IF_ERROR(
            query_.table->ScanBatch(&pos_, batch_rows_, &views_, &done_));
        if (!views_.empty()) {
          counters_->batches.fetch_add(1, std::memory_order_relaxed);
          counters_->rows.fetch_add(views_.size(), std::memory_order_relaxed);
        }
      }
      if (views_.empty()) continue;  // exhausted or fully prefiltered
      EvaluateViews(query_, read_options_, views_, out, pushdown_);
    }
    return true;
  }

 private:
  /// One latched chunk from the current partition's pushdown cursor,
  /// advancing to the next partition on exhaustion. Partition order is the
  /// legacy path's (partition, heap) order.
  Status PullPushdownBatch() {
    if (!cursor_open_) {
      if (partition_ >= query_.table->num_partitions()) {
        done_ = true;
        views_.clear();
        return Status::OK();
      }
      cursor_ = query_.table->OpenPartitionCursor(partition_);
      cursor_open_ = true;
    }
    ScanDeltas deltas;
    bool partition_done = false;
    IDB_RETURN_IF_ERROR(cursor_.NextBatch(batch_rows_, spec_, &ws_, &views_,
                                          &partition_done, &deltas));
    if (partition_done) {
      cursor_open_ = false;
      ++partition_;
      if (partition_ >= query_.table->num_partitions()) done_ = true;
    }
    if (deltas.rows_scanned > 0) {
      counters_->batches.fetch_add(1, std::memory_order_relaxed);
      FoldDeltas(counters_, deltas);
    }
    return Status::OK();
  }

  const ReadOptions read_options_;
  Database::ScanCounters* const counters_;
  const ScanBudget budget_;
  const BoundQuery& query_;
  const size_t batch_rows_;
  const bool pushdown_;
  const StablePredicateFilter filter_;
  ScanSpec spec_;
  ScanWorkspace ws_;
  TableScanPos pos_;
  uint32_t partition_ = 0;
  PartitionCursor cursor_;
  bool cursor_open_ = false;
  bool done_ = false;
  std::vector<RowView> views_;
};

/// Morsel fan-out source: `workers` prefetch threads claim page-range
/// morsels from the shared MorselScheduler (partition-affine home queues,
/// stealing from the busiest partition when their own runs dry — so
/// parallelism is not capped by the partition count and one skewed
/// partition is shared), pull ScanBatch batches under that partition's
/// shared latch, run whole-batch σ, and push the qualifying batches into a
/// bounded queue the consumer drains. Per-batch snapshot semantics are
/// exactly the sequential source's — parallelism changes only which
/// morsels' batches interleave, never what one batch may contain. Producer
/// threads are borrowed from the Database's shared worker pool when it has
/// idle capacity; the shortfall is spawned, because a streaming consumer
/// waits on `producers_live_ > 0` and the producer count must therefore be
/// guaranteed, not best-effort. Batch storage circulates: drained batches
/// return to a spare pool the workers refill, so a steady-state scan stops
/// allocating. The queue bound backpressures workers when the consumer is
/// slow; the consumer counts a prefetch stall each time it finds the queue
/// empty while workers are still producing.
class ParallelScanSource : public RowSource {
 public:
  ParallelScanSource(Session* session, const BoundQuery& query,
                     size_t batch_rows, size_t workers, size_t queue_batches,
                     std::vector<std::vector<Morsel>> plan)
      : read_options_(session->read_options()),
        counters_(session->db()->scan_counters()),
        budget_(ScanBudget::Of(session)),
        pool_(session->db()->worker_pool()),
        query_(query),
        batch_rows_(batch_rows),
        queue_capacity_(std::max<size_t>(queue_batches, 1)),
        pushdown_(session->scan_options().pushdown),
        filter_(query.table->schema(), query.predicates),
        sched_(std::move(plan),
               MorselStatsSink{&counters_->morsels_claimed,
                               &counters_->morsels_stolen,
                               &counters_->steal_failures}) {
    spec_.filter = filter_.empty() ? nullptr : &filter_;
    spec_.need_degradable = !query.referenced_degradable.empty();
    // The shortfall must be computed from the immutable `want`, never from
    // producers_live_: borrowed pool producers start (and may finish,
    // decrementing producers_live_) while this constructor is still running.
    const size_t want = std::max<size_t>(workers, 1);
    producers_live_ = want;
    const size_t borrowed = pool_->TryDispatch(
        want, [this](size_t) { ProduceLoop(); }, &ticket_);
    if (borrowed < want) {
      runner_.Start(want - borrowed, [this](size_t) { ProduceLoop(); });
    }
  }

  ~ParallelScanSource() override {
    {
      // The lock orders the store against a producer's wait predicate so
      // the notify cannot fall between its check and its sleep.
      std::lock_guard<std::mutex> lock(mu_);
      closed_.store(true, std::memory_order_relaxed);
    }
    cv_.notify_all();
    runner_.Join();
    pool_->Wait(&ticket_);
  }

  Result<bool> NextBatch(EvaluatedBatch* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    bool stalled = false;
    while (true) {
      if (!error_.ok()) return error_;
      // Consumer-side budget probe, ahead of the queue: once the deadline
      // passes (or the token trips) the cursor reports it on the very next
      // pull, even when scanned batches are still buffered — a doomed
      // statement must not keep streaming stale work.
      IDB_RETURN_IF_ERROR(budget_.Check());
      if (!queue_.empty()) {
        out->Clear();
        out->Swap(&queue_.front());
        // The swapped-out storage (the consumer's previous batch) goes back
        // to the spare pool for a worker to refill.
        spares_.push_back(std::move(queue_.front()));
        queue_.pop_front();
        cv_.notify_all();
        return true;
      }
      if (producers_live_ == 0) return false;
      // One stall per pull that found the queue empty — not one per wakeup,
      // or producer-exit notifications would inflate the producer-bound
      // signal the benches read.
      if (!stalled) {
        stalled = true;
        counters_->prefetch_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      cv_.wait(lock);
    }
  }

 private:
  void ProduceLoop() {
    // Stable worker id for morsel affinity: worker w's home queue is
    // partition w % partitions, so distinct producers start on distinct
    // partitions and only meet on one when stealing.
    const size_t worker = worker_ids_.fetch_add(1, std::memory_order_relaxed);
    std::vector<RowView> views;
    EvaluatedBatch batch;
    ScanWorkspace ws;
    Status status;
    Morsel morsel;
    for (;;) {
      // Morsel-claim budget check: a producer whose statement timed out or
      // was cancelled stops claiming; the error wakes the consumer and the
      // destructor's join/Wait releases every borrowed pool token.
      status = budget_.Check();
      if (!status.ok()) break;
      if (!sched_.Claim(worker, &morsel)) break;
      PartitionCursor cursor = query_.table->OpenMorselCursor(morsel);
      bool done = false;
      while (!done) {
        // An early Close (cursor dropped mid-stream) must not keep workers
        // scanning the rest of the table before the destructor can join.
        if (closed_.load(std::memory_order_relaxed)) return;
        status = budget_.Check();
        if (!status.ok()) break;
        if (pushdown_) {
          ScanDeltas deltas;
          status =
              cursor.NextBatch(batch_rows_, spec_, &ws, &views, &done, &deltas);
          if (!status.ok()) break;
          if (deltas.rows_scanned > 0) {
            counters_->batches.fetch_add(1, std::memory_order_relaxed);
            FoldDeltas(counters_, deltas);
          }
        } else {
          views.clear();
          status = cursor.NextBatch(batch_rows_, &views, &done);
          if (!status.ok()) break;
          if (!views.empty()) {
            counters_->batches.fetch_add(1, std::memory_order_relaxed);
            counters_->rows.fetch_add(views.size(), std::memory_order_relaxed);
          }
        }
        if (views.empty()) continue;
        batch.Clear();
        EvaluateViews(query_, read_options_, views, &batch, pushdown_);
        if (batch.size == 0) continue;  // fully filtered: recycle in place,
                                        // no reason to touch the queue lock
        std::unique_lock<std::mutex> lock(mu_);
        while (queue_.size() >= queue_capacity_ &&
               !closed_.load(std::memory_order_relaxed)) {
          cv_.wait(lock);
        }
        if (closed_.load(std::memory_order_relaxed)) return;
        queue_.emplace_back();
        queue_.back().Swap(&batch);
        if (!spares_.empty()) {
          // Refill our working storage from the spare pool so the batch we
          // just published keeps its buffers.
          batch.Swap(&spares_.back());
          spares_.pop_back();
        }
        cv_.notify_all();
      }
      if (!status.ok()) break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && error_.ok()) error_ = status;
    --producers_live_;
    cv_.notify_all();
  }

  const ReadOptions read_options_;
  Database::ScanCounters* const counters_;
  const ScanBudget budget_;
  WorkerPool* const pool_;
  const BoundQuery& query_;
  const size_t batch_rows_;
  const size_t queue_capacity_;
  const bool pushdown_;
  const StablePredicateFilter filter_;
  ScanSpec spec_;
  MorselScheduler sched_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<EvaluatedBatch> queue_;
  std::vector<EvaluatedBatch> spares_;
  Status error_;
  size_t producers_live_ = 0;
  /// Atomic so producers can poll it between batches without the mutex.
  std::atomic<bool> closed_{false};
  std::atomic<size_t> worker_ids_{0};
  WorkerPool::Ticket ticket_;
  ParallelRunner runner_;
};

/// Materializing-path source: workers claim page-range morsels from a
/// shared MorselScheduler and drain each under that partition's shared
/// latch a batch at a time, with σ applied as the batches stream — so only
/// qualifying rows are ever held. Snapshot semantics are per batch (the
/// streaming cursor's), not per partition: a concurrent degrader may land
/// between two batches of one partition, which every caller already had to
/// tolerate across partitions. Workers are borrowed from the Database's
/// shared pool (small tables resolve to 1 and stay inline), and the
/// per-morsel results merge in morsel-ordinal order — (partition,
/// begin_page) ascending — so the output order matches the sequential
/// scan's regardless of parallelism or stealing. Used when the caller asks
/// for an unbounded batch (Session::Execute, DELETE, aggregates).
class SnapshotScanSource : public RowSource {
 public:
  SnapshotScanSource(Session* session, const BoundQuery& query,
                     size_t workers)
      : session_(session),
        query_(query),
        workers_(workers),
        pushdown_(session->scan_options().pushdown),
        filter_(query.table->schema(), query.predicates) {
    spec_.filter = filter_.empty() ? nullptr : &filter_;
    spec_.need_degradable = !query.referenced_degradable.empty();
  }

  Result<bool> NextBatch(EvaluatedBatch* out) override {
    if (!scanned_) {
      scanned_ = true;
      IDB_RETURN_IF_ERROR(ScanAll());
    }
    if (served_ || result_.size == 0) return false;
    served_ = true;
    out->Clear();
    out->Swap(&result_);
    return true;
  }

 private:
  Status ScanAll() {
    const Table* table = query_.table;
    const ReadOptions read_options = session_->read_options();
    auto* counters = session_->db()->scan_counters();
    MorselScheduler sched(
        table->MorselPlan(session_->scan_options().morsel_pages),
        MorselStatsSink{&counters->morsels_claimed, &counters->morsels_stolen,
                        &counters->steal_failures});
    const size_t workers =
        std::max<size_t>(1, std::min(workers_, sched.total()));
    // One bucket per morsel, concatenated in ordinal order below: ordinals
    // are assigned in (partition, begin_page) order, so the merged output
    // is the sequential scan's order no matter which worker drained what.
    const ScanBudget budget = ScanBudget::Of(session_);
    std::vector<std::vector<EvaluatedRow>> per_morsel(sched.total());
    auto drain = [&](size_t w) -> Status {
      Morsel morsel;
      ScanWorkspace ws;
      EvaluatedRow row;
      std::vector<RowView> views;
      while (sched.Claim(w, &morsel)) {
        IDB_RETURN_IF_ERROR(budget.Check());
        std::vector<EvaluatedRow>& bucket = per_morsel[morsel.ordinal];
        PartitionCursor cursor = table->OpenMorselCursor(morsel);
        bool done = false;
        while (!done) {
          IDB_RETURN_IF_ERROR(budget.Check());
          if (pushdown_) {
            // Stable predicates run on the decoded tuples and stores are
            // probed only for the survivors, exactly as on the streaming
            // path.
            ScanDeltas deltas;
            IDB_RETURN_IF_ERROR(cursor.NextBatch(kMaterializedScanBatchRows,
                                                 spec_, &ws, &views, &done,
                                                 &deltas));
            if (deltas.rows_scanned > 0) {
              counters->batches.fetch_add(1, std::memory_order_relaxed);
              FoldDeltas(counters, deltas);
            }
            for (const RowView& view : views) {
              if (EvaluateRow(query_, read_options, view, &row,
                              /*stable_prefiltered=*/true)) {
                bucket.push_back(std::move(row));
              }
            }
          } else {
            views.clear();
            IDB_RETURN_IF_ERROR(
                cursor.NextBatch(kMaterializedScanBatchRows, &views, &done));
            if (!views.empty()) {
              counters->batches.fetch_add(1, std::memory_order_relaxed);
              counters->rows.fetch_add(views.size(),
                                       std::memory_order_relaxed);
            }
            for (const RowView& view : views) {
              if (EvaluateRow(query_, read_options, view, &row)) {
                bucket.push_back(std::move(row));
              }
            }
          }
        }
      }
      return Status::OK();
    };
    IDB_RETURN_IF_ERROR(
        session_->db()->worker_pool()->Run(workers, workers, drain));
    for (auto& rows : per_morsel) {
      for (EvaluatedRow& row : rows) *result_.Add() = std::move(row);
    }
    return Status::OK();
  }

  Session* const session_;
  const BoundQuery& query_;
  const size_t workers_;
  const bool pushdown_;
  const StablePredicateFilter filter_;
  ScanSpec spec_;
  bool scanned_ = false;
  bool served_ = false;
  EvaluatedBatch result_;
};

/// Probes the multi-resolution index once (row ids only — cheap), then
/// fetches and evaluates rows batch-at-a-time.
class IndexScanSource : public RowSource {
 public:
  IndexScanSource(Session* session, const BoundQuery& query,
                  std::vector<RowId> rids, size_t batch_rows)
      : read_options_(session->read_options()),
        counters_(session->db()->scan_counters()),
        budget_(ScanBudget::Of(session)),
        query_(query),
        rids_(std::move(rids)),
        batch_rows_(std::max<size_t>(batch_rows, 1)) {}

  Result<bool> NextBatch(EvaluatedBatch* out) override {
    out->Clear();
    while (out->size == 0 && next_ < rids_.size()) {
      IDB_RETURN_IF_ERROR(budget_.Check());
      uint64_t fetched = 0;
      while (next_ < rids_.size() && out->size < batch_rows_) {
        IDB_ASSIGN_OR_RETURN(auto view, query_.table->GetRow(rids_[next_++]));
        if (!view.has_value()) continue;
        ++fetched;
        EvaluatedRow* slot = out->Add();
        if (!EvaluateRow(query_, read_options_, *view, slot)) out->DropLast();
      }
      counters_->batches.fetch_add(1, std::memory_order_relaxed);
      counters_->rows.fetch_add(fetched, std::memory_order_relaxed);
    }
    return out->size > 0;
  }

 private:
  const ReadOptions read_options_;
  Database::ScanCounters* const counters_;
  const ScanBudget budget_;
  const BoundQuery& query_;
  std::vector<RowId> rids_;
  const size_t batch_rows_;
  size_t next_ = 0;
};

}  // namespace

Result<bool> RowSource::Next(EvaluatedRow* out) {
  while (adapter_next_ >= adapter_batch_.size) {
    if (adapter_done_) return false;
    adapter_next_ = 0;
    IDB_ASSIGN_OR_RETURN(const bool more, NextBatch(&adapter_batch_));
    if (!more) {
      adapter_done_ = true;
      return false;
    }
  }
  *out = std::move(adapter_batch_.rows[adapter_next_++]);
  return true;
}

void EvaluateViews(const BoundQuery& query, const ReadOptions& read_options,
                   const std::vector<RowView>& views, EvaluatedBatch* out,
                   bool stable_prefiltered) {
  for (const RowView& view : views) {
    EvaluatedRow* slot = out->Add();
    if (!EvaluateRow(query, read_options, view, slot, stable_prefiltered)) {
      out->DropLast();
    }
  }
}

size_t ResolveScanParallelism(Session* session, const Table& table) {
  size_t parallelism = session->scan_options().parallelism;
  if (parallelism == 0) {
    // Auto mode stays inline on small tables: worker dispatch costs tens of
    // microseconds, which dwarfs the whole scan of a table a few batches
    // long (point SELECTs, small aggregates, DELETEs). An explicit
    // parallelism setting is always honored. No partition clamp: the unit
    // of parallelism is the morsel, and every scan path clamps to its own
    // morsel-plan size at dispatch time.
    if (table.live_rows() < kParallelScanMinRows) return 1;
    parallelism = std::max<size_t>(
        session->db()->options().degradation.worker_threads, 1);
  }
  return std::max<size_t>(parallelism, 1);
}

Result<BoundQuery> BindQuery(Session* session, const std::string& table_name,
                             const std::vector<PredicateAst>& where,
                             const std::vector<int>& projected_columns) {
  BoundQuery query;
  const TableDef* def = ResolveTableName(session->db()->catalog(), table_name,
                                         /*allow_prefix=*/false);
  if (def == nullptr) {
    return Status::NotFound("no such table: " + table_name);
  }
  query.table = session->db()->GetTable(def->id);
  const Schema& schema = query.table->schema();

  for (const PredicateAst& ast : where) {
    BoundPredicate pred;
    IDB_RETURN_IF_ERROR(BindPredicate(schema, session, def->id, ast, &pred));
    if (pred.degradable) {
      query.referenced_degradable.insert(pred.column);
      query.accuracy[pred.column] = pred.level;
    }
    query.predicates.push_back(std::move(pred));
  }
  for (int col : projected_columns) {
    if (col >= 0 && schema.column(col).kind == ColumnKind::kDegradable) {
      query.referenced_degradable.insert(col);
      query.accuracy[col] = session->AccuracyFor(def->id, col);
    }
  }
  return query;
}

bool EvaluateRow(const BoundQuery& query, const ReadOptions& read_options,
                 const RowView& view, EvaluatedRow* out,
                 bool stable_prefiltered) {
  const Schema& schema = query.table->schema();
  out->row_id = view.row_id;
  out->values = view.values;
  out->degradable_level.clear();

  // Computability (σ over ∪_{j≤k} ST_j) and f_k generalization.
  for (int col : query.referenced_degradable) {
    const ColumnDef& column = schema.column(col);
    const int ordinal = schema.DegradableOrdinal(col);
    const int phase = view.phases[ordinal];
    const int k = query.accuracy.at(col);
    if (phase >= column.lcp.num_phases()) {
      return false;  // value removed (⊥): never computable
    }
    const int stored_level = column.lcp.phase(phase).level;
    if (stored_level > k && !read_options.include_coarser) {
      return false;  // coarser than demanded: not in any ST_{j<=k}
    }
    const int target_level = std::max(stored_level, k);
    Value vk = view.values[col];
    if (stored_level < target_level) {
      auto generalized =
          column.hierarchy->Generalize(vk, stored_level, target_level);
      if (!generalized.ok()) return false;
      vk = *generalized;
    }
    out->values[col] = vk;
    out->degradable_level.Set(col, target_level);
  }

  // σ_P over the generalized image.
  for (const BoundPredicate& pred : query.predicates) {
    const ColumnDef& column = schema.column(pred.column);
    if (pred.degradable) {
      const int level = out->degradable_level.Get(pred.column);
      if (!EvalDegradablePredicate(*column.hierarchy, pred,
                                   out->values[pred.column], level)) {
        return false;
      }
    } else {
      // Stable terms already ran below row assembly when the scan pushed
      // them down; only the index path re-checks them here.
      if (stable_prefiltered) continue;
      if (!EvalStablePredicate(pred, out->values[pred.column])) return false;
    }
  }
  return true;
}

std::string RenderValue(const Schema& schema, int col, const Value& value,
                        const DegradableLevels& levels) {
  const ColumnDef& column = schema.column(col);
  if (value.is_null()) return "NULL";
  if (column.kind == ColumnKind::kDegradable) {
    return column.hierarchy->DisplayValue(value, levels.Get(col, 0));
  }
  return value.ToString();
}

namespace {

/// The degradable predicate an index probe would serve, or nullptr when the
/// query takes a heap scan (shared by MakeRowSource and CanPushAggregate so
/// both always agree on the access path).
const BoundPredicate* UsableIndexPredicate(Session* session,
                                           const BoundQuery& query) {
  if (!session->use_indexes() || session->read_options().include_coarser) {
    return nullptr;
  }
  for (const BoundPredicate& pred : query.predicates) {
    if (pred.degradable && pred.index_usable) return &pred;
  }
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<RowSource>> MakeRowSource(Session* session,
                                                 const BoundQuery& query,
                                                 size_t scan_batch_rows) {
  const BoundPredicate* index_pred = UsableIndexPredicate(session, query);
  if (index_pred != nullptr) {
    std::vector<RowId> rids;
    if (index_pred->op == ComparisonOp::kBetween) {
      IDB_RETURN_IF_ERROR(query.table->IndexLookupRange(
          index_pred->column, index_pred->value, index_pred->value2,
          index_pred->level, &rids));
    } else {
      // Equality / label-LIKE: probe at the literal's own level so every
      // computable phase tree is visited.
      IDB_RETURN_IF_ERROR(query.table->IndexLookupEqual(
          index_pred->column, index_pred->value,
          std::max(index_pred->literal_level, index_pred->level), &rids));
    }
    std::sort(rids.begin(), rids.end());
    return std::unique_ptr<RowSource>(new IndexScanSource(
        session, query, std::move(rids),
        scan_batch_rows == SIZE_MAX ? kStreamingScanBatchRows
                                    : scan_batch_rows));
  }
  size_t parallelism = ResolveScanParallelism(session, *query.table);
  if (scan_batch_rows == SIZE_MAX) {
    return std::unique_ptr<RowSource>(
        new SnapshotScanSource(session, query, parallelism));
  }
  std::vector<std::vector<Morsel>> plan;
  if (parallelism > 1) {
    // Clamp the fan-out to the actual work: a table one morsel long gains
    // nothing from prefetch workers or the bounded-queue machinery, and a
    // two-morsel table needs at most two producers.
    plan = query.table->MorselPlan(session->scan_options().morsel_pages);
    size_t total = 0;
    for (const auto& queue : plan) total += queue.size();
    parallelism = std::min(parallelism, total);
  }
  if (parallelism <= 1) {
    return std::unique_ptr<RowSource>(
        new HeapScanSource(session, query, scan_batch_rows));
  }
  size_t queue_batches = session->scan_options().prefetch_batches;
  if (queue_batches == 0) queue_batches = 2 * parallelism;
  return std::unique_ptr<RowSource>(
      new ParallelScanSource(session, query, scan_batch_rows, parallelism,
                             queue_batches, std::move(plan)));
}

Result<SelectPlan> BindSelect(Session* session, const SelectAst& ast) {
  SelectPlan select;
  {
    const TableDef* def = ResolveTableName(session->db()->catalog(), ast.table,
                                           /*allow_prefix=*/false);
    if (def == nullptr) return Status::NotFound("no such table: " + ast.table);
    select.schema = &def->schema;
  }
  const Schema& schema = *select.schema;

  select.items = ast.items;
  if (ast.star) {
    for (int i = 0; i < schema.num_columns(); ++i) {
      select.items.push_back(
          SelectItem{AggregateKind::kNone, schema.column(i).name});
    }
  }

  std::vector<int> projected;
  for (const SelectItem& item : select.items) {
    if (item.aggregate != AggregateKind::kNone) select.has_aggregate = true;
    int col = -1;
    if (!item.column.empty()) {
      col = ResolveColumnName(schema, item.column);
      if (col < 0) {
        return Status::InvalidArgument("unknown column: " + item.column);
      }
      projected.push_back(col);
    }
    select.item_columns.push_back(col);
    switch (item.aggregate) {
      case AggregateKind::kNone:
        select.output_columns.push_back(item.column);
        break;
      case AggregateKind::kCount:
        select.output_columns.push_back(
            item.column.empty() ? "COUNT(*)" : "COUNT(" + item.column + ")");
        break;
      case AggregateKind::kSum:
        select.output_columns.push_back("SUM(" + item.column + ")");
        break;
      case AggregateKind::kAvg:
        select.output_columns.push_back("AVG(" + item.column + ")");
        break;
      case AggregateKind::kMin:
        select.output_columns.push_back("MIN(" + item.column + ")");
        break;
      case AggregateKind::kMax:
        select.output_columns.push_back("MAX(" + item.column + ")");
        break;
    }
  }
  if (!ast.group_by.empty()) {
    select.group_col = ResolveColumnName(schema, ast.group_by);
    if (select.group_col < 0) {
      return Status::InvalidArgument("unknown column: " + ast.group_by);
    }
    projected.push_back(select.group_col);
    select.has_aggregate = true;
  }

  IDB_ASSIGN_OR_RETURN(select.query,
                       BindQuery(session, ast.table, ast.where, projected));
  return select;
}

bool CanPushAggregate(Session* session, const SelectPlan& select) {
  if (!session->scan_options().pushdown) return false;
  if (!select.has_aggregate || select.group_col >= 0) return false;
  for (const SelectItem& item : select.items) {
    // A non-aggregate item needs per-row output; partials can't carry it.
    if (item.aggregate == AggregateKind::kNone) return false;
  }
  return UsableIndexPredicate(session, select.query) == nullptr;
}

namespace {

void InitPartials(size_t items, AggregatePartials* agg) {
  agg->count = 0;
  agg->sums.assign(items, 0);
  agg->mins.assign(items, Value::Null());
  agg->maxs.assign(items, Value::Null());
  agg->non_null.assign(items, 0);
}

/// Folds one qualifying row into a worker's partial — the same per-item
/// state transitions as the executor's row-at-a-time AggState fold.
void FoldAggregateRow(const SelectPlan& select, const EvaluatedRow& row,
                      AggregatePartials* agg) {
  ++agg->count;
  const auto& items = select.items;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].aggregate == AggregateKind::kNone || items[i].column.empty()) {
      continue;
    }
    const Value& v = row.values[select.item_columns[i]];
    if (v.is_null()) continue;
    ++agg->non_null[i];
    if (v.type() == ValueType::kInt64 || v.type() == ValueType::kTimestamp) {
      agg->sums[i] += static_cast<double>(v.int64());
    } else if (v.type() == ValueType::kDouble) {
      agg->sums[i] += v.dbl();
    }
    if (agg->mins[i].is_null() || v.Compare(agg->mins[i]) < 0) {
      agg->mins[i] = v;
    }
    if (agg->maxs[i].is_null() || v.Compare(agg->maxs[i]) > 0) {
      agg->maxs[i] = v;
    }
  }
}

/// Merge is associative over per-partition partials: counts and sums add,
/// extrema compare — so partition order never matters.
void MergePartials(const AggregatePartials& in, AggregatePartials* out) {
  out->count += in.count;
  for (size_t i = 0; i < in.sums.size(); ++i) {
    out->sums[i] += in.sums[i];
    out->non_null[i] += in.non_null[i];
    if (!in.mins[i].is_null() &&
        (out->mins[i].is_null() || in.mins[i].Compare(out->mins[i]) < 0)) {
      out->mins[i] = in.mins[i];
    }
    if (!in.maxs[i].is_null() &&
        (out->maxs[i].is_null() || in.maxs[i].Compare(out->maxs[i]) > 0)) {
      out->maxs[i] = in.maxs[i];
    }
  }
}

}  // namespace

Result<AggregatePartials> ExecuteAggregatePushdown(Session* session,
                                                   const SelectPlan& select) {
  const BoundQuery& query = select.query;
  const Table* table = query.table;
  const ReadOptions read_options = session->read_options();
  auto* counters = session->db()->scan_counters();

  const StablePredicateFilter filter(table->schema(), query.predicates);
  ScanSpec spec;
  spec.filter = filter.empty() ? nullptr : &filter;
  // COUNT(*)/stable-only aggregates reference no degradable column: the scan
  // never touches a state store at all.
  spec.need_degradable = !query.referenced_degradable.empty();

  MorselScheduler sched(
      table->MorselPlan(session->scan_options().morsel_pages),
      MorselStatsSink{&counters->morsels_claimed, &counters->morsels_stolen,
                      &counters->steal_failures});
  const size_t workers =
      std::max<size_t>(1, std::min(ResolveScanParallelism(session, *table),
                                   sched.total()));
  // One partial per WORKER, not per partition: a worker folds every morsel
  // it claims — home partition or stolen — into its own accumulator, and
  // merge associativity makes the claim order irrelevant.
  const ScanBudget budget = ScanBudget::Of(session);
  std::vector<AggregatePartials> partials(workers);
  auto drain = [&](size_t w) -> Status {
    AggregatePartials& agg = partials[w];
    InitPartials(select.items.size(), &agg);
    ScanWorkspace ws;
    EvaluatedRow row;
    std::vector<RowView> views;
    Morsel morsel;
    while (sched.Claim(w, &morsel)) {
      IDB_RETURN_IF_ERROR(budget.Check());
      PartitionCursor cursor = table->OpenMorselCursor(morsel);
      bool done = false;
      while (!done) {
        IDB_RETURN_IF_ERROR(budget.Check());
        ScanDeltas deltas;
        IDB_RETURN_IF_ERROR(cursor.NextBatch(kMaterializedScanBatchRows, spec,
                                             &ws, &views, &done, &deltas));
        if (deltas.rows_scanned > 0) {
          counters->batches.fetch_add(1, std::memory_order_relaxed);
          FoldDeltas(counters, deltas);
        }
        for (const RowView& view : views) {
          if (EvaluateRow(query, read_options, view, &row,
                          /*stable_prefiltered=*/true)) {
            FoldAggregateRow(select, row, &agg);
          }
        }
      }
    }
    return Status::OK();
  };
  IDB_RETURN_IF_ERROR(session->db()->worker_pool()->Run(workers, workers, drain));

  AggregatePartials merged;
  InitPartials(select.items.size(), &merged);
  for (const AggregatePartials& partial : partials) {
    MergePartials(partial, &merged);
  }
  counters->aggregate_partials_merged.fetch_add(workers,
                                                std::memory_order_relaxed);
  return merged;
}

}  // namespace plan
}  // namespace instantdb
