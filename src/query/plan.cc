#include "query/plan.h"

#include <algorithm>
#include <cctype>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <mutex>

#include "common/strings.h"
#include "util/parallel.h"

namespace instantdb {
namespace plan {

namespace {

bool ContainsIgnoreCase(const std::string& haystack,
                        const std::string& needle) {
  if (needle.empty()) return true;
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end(), [](char a, char b) {
                          return std::toupper(static_cast<unsigned char>(a)) ==
                                 std::toupper(static_cast<unsigned char>(b));
                        });
  return it != haystack.end();
}

bool MatchLike(const std::string& text, const BoundPredicate& pred) {
  const std::string& core = pred.like_core;
  if (pred.like_prefix_wildcard && pred.like_suffix_wildcard) {
    return ContainsIgnoreCase(text, core);
  }
  if (pred.like_prefix_wildcard) {  // %core — suffix match
    return text.size() >= core.size() &&
           EqualsIgnoreCase(text.substr(text.size() - core.size()), core);
  }
  if (pred.like_suffix_wildcard) {  // core% — prefix match
    return text.size() >= core.size() &&
           EqualsIgnoreCase(text.substr(0, core.size()), core);
  }
  return EqualsIgnoreCase(text, core);
}

/// Finds the level of a literal value in a hierarchy (tree labels can sit at
/// any level; interval bucket bounds at several — prefer the leaf).
Result<int> LiteralLevel(const DomainHierarchy& hierarchy, const Value& value) {
  for (int level = 0; level < hierarchy.height(); ++level) {
    if (hierarchy.ValidateAtLevel(value, level).ok()) return level;
  }
  return Status::InvalidArgument("literal '" + value.ToString() +
                                 "' is not a value of domain " +
                                 hierarchy.name());
}

/// Case-insensitive label lookup across all levels of a tree domain (the
/// paper's `LIKE "%FRANCE%"` names the node "France").
Result<std::pair<Value, int>> ResolveLabel(const DomainHierarchy& hierarchy,
                                           const std::string& label) {
  const auto* tree = dynamic_cast<const GeneralizationTree*>(&hierarchy);
  if (tree == nullptr) {
    return Status::NotFound("not a tree domain");
  }
  for (int level = 0; level < tree->height(); ++level) {
    for (const std::string& candidate : tree->LabelsAtLevel(level)) {
      if (EqualsIgnoreCase(candidate, label)) {
        return std::make_pair(Value::String(candidate), level);
      }
    }
  }
  return Status::NotFound("no label '" + label + "' in domain " +
                          hierarchy.name());
}

/// Parses the paper's bucket literal syntax 'lo-hi' for interval domains.
bool ParseBucketLiteral(const std::string& text, int64_t* lo, int64_t* hi) {
  const size_t dash = text.find('-', 1);
  if (dash == std::string::npos) return false;
  char* end = nullptr;
  *lo = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + dash) return false;
  *hi = std::strtoll(text.c_str() + dash + 1, &end, 10);
  return *end == '\0';
}

Status BindPredicate(const Schema& schema, Session* session, TableId table_id,
                     const PredicateAst& ast, BoundPredicate* out) {
  out->column = ResolveColumnName(schema, ast.column);
  if (out->column < 0) {
    return Status::InvalidArgument("unknown column: " + ast.column);
  }
  const ColumnDef& column = schema.column(out->column);
  out->degradable = column.kind == ColumnKind::kDegradable;
  out->op = ast.op;
  out->value = ast.value;
  out->value2 = ast.value2;
  if (!out->degradable) {
    if (ast.op == ComparisonOp::kLike) {
      if (ast.value.type() != ValueType::kString) {
        return Status::InvalidArgument("LIKE needs a string pattern");
      }
      std::string pattern = ast.value.str();
      out->like_prefix_wildcard = StartsWith(pattern, "%");
      out->like_suffix_wildcard = EndsWith(pattern, "%") && pattern.size() > 1;
      if (out->like_prefix_wildcard) pattern.erase(0, 1);
      if (out->like_suffix_wildcard && !pattern.empty()) pattern.pop_back();
      out->like_core = pattern;
    }
    return Status::OK();
  }

  const DomainHierarchy& hierarchy = *column.hierarchy;
  out->level = session->AccuracyFor(table_id, out->column);

  switch (ast.op) {
    case ComparisonOp::kEq:
    case ComparisonOp::kNe: {
      Value literal = ast.value;
      if (hierarchy.value_type() == ValueType::kInt64 &&
          literal.type() == ValueType::kString) {
        // '2000-3000' bucket syntax: the width names the level.
        int64_t lo, hi;
        if (!ParseBucketLiteral(literal.str(), &lo, &hi)) {
          return Status::InvalidArgument("bad bucket literal: " +
                                         literal.str());
        }
        const auto* interval =
            static_cast<const IntervalHierarchy*>(&hierarchy);
        IDB_ASSIGN_OR_RETURN(out->literal_level,
                             interval->LevelForWidth(hi - lo));
        literal = Value::Int64(lo);
      } else {
        IDB_ASSIGN_OR_RETURN(out->literal_level,
                             LiteralLevel(hierarchy, literal));
      }
      IDB_ASSIGN_OR_RETURN(out->literal_interval,
                           hierarchy.LeafRange(literal, out->literal_level));
      out->value = literal;
      out->index_usable = ast.op == ComparisonOp::kEq;
      return Status::OK();
    }
    case ComparisonOp::kLike: {
      if (ast.value.type() != ValueType::kString) {
        return Status::InvalidArgument("LIKE needs a string pattern");
      }
      std::string pattern = ast.value.str();
      out->like_prefix_wildcard = StartsWith(pattern, "%");
      out->like_suffix_wildcard = EndsWith(pattern, "%") && pattern.size() > 1;
      if (out->like_prefix_wildcard) pattern.erase(0, 1);
      if (out->like_suffix_wildcard && !pattern.empty()) pattern.pop_back();
      out->like_core = pattern;
      // `%France%` resolves to the France node: evaluated (and indexed) as
      // an equality against that node's subtree.
      auto label = ResolveLabel(hierarchy, pattern);
      if (label.ok()) {
        out->value = label->first;
        out->literal_level = label->second;
        auto interval = hierarchy.LeafRange(label->first, label->second);
        if (interval.ok()) {
          out->literal_interval = *interval;
          out->index_usable = true;
        }
      }
      return Status::OK();
    }
    case ComparisonOp::kBetween: {
      if (hierarchy.value_type() != ValueType::kInt64) {
        return Status::NotSupported("BETWEEN on categorical domains");
      }
      if (ast.value.type() != ValueType::kInt64 ||
          ast.value2.type() != ValueType::kInt64) {
        return Status::InvalidArgument("BETWEEN bounds must be integers");
      }
      // Bounds generalize to the demanded level's buckets.
      IDB_ASSIGN_OR_RETURN(Value lo,
                           hierarchy.Generalize(ast.value, 0, out->level));
      IDB_ASSIGN_OR_RETURN(Value hi,
                           hierarchy.Generalize(ast.value2, 0, out->level));
      out->value = lo;
      out->value2 = hi;
      out->literal_level = out->level;
      IDB_ASSIGN_OR_RETURN(out->literal_interval,
                           hierarchy.LeafRange(lo, out->level));
      IDB_ASSIGN_OR_RETURN(out->literal_interval2,
                           hierarchy.LeafRange(hi, out->level));
      out->index_usable = true;
      return Status::OK();
    }
    case ComparisonOp::kLt:
    case ComparisonOp::kLe:
    case ComparisonOp::kGt:
    case ComparisonOp::kGe: {
      if (hierarchy.value_type() != ValueType::kInt64) {
        return Status::NotSupported(
            "ordering predicates on categorical domains");
      }
      if (ast.value.type() != ValueType::kInt64) {
        return Status::InvalidArgument("ordering literal must be an integer");
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

/// Evaluates one bound predicate against a value already generalized to
/// `value_level` (== min(k, stored level) under include_coarser).
bool EvalDegradablePredicate(const DomainHierarchy& hierarchy,
                             const BoundPredicate& pred, const Value& value,
                             int value_level) {
  switch (pred.op) {
    case ComparisonOp::kEq:
    case ComparisonOp::kNe: {
      auto row_interval = hierarchy.LeafRange(value, value_level);
      if (!row_interval.ok()) return false;
      const bool contains = pred.literal_interval.Contains(*row_interval);
      return pred.op == ComparisonOp::kEq ? contains : !contains;
    }
    case ComparisonOp::kLike: {
      if (pred.literal_level >= 0) {
        auto row_interval = hierarchy.LeafRange(value, value_level);
        return row_interval.ok() &&
               pred.literal_interval.Contains(*row_interval);
      }
      return MatchLike(hierarchy.DisplayValue(value, value_level), pred);
    }
    case ComparisonOp::kBetween: {
      auto row_interval = hierarchy.LeafRange(value, value_level);
      if (!row_interval.ok()) return false;
      return row_interval->lo >= pred.literal_interval.lo &&
             row_interval->hi <= pred.literal_interval2.hi;
    }
    case ComparisonOp::kLt:
      return value.int64() < pred.value.int64();
    case ComparisonOp::kLe:
      return value.int64() <= pred.value.int64();
    case ComparisonOp::kGt:
      // Bucket lower-bound comparison: a bucket qualifies when it lies
      // entirely above the literal is too strict for coarse levels; we
      // compare lower bounds (documented choice).
      return value.int64() > pred.value.int64();
    case ComparisonOp::kGe:
      return value.int64() >= pred.value.int64();
  }
  return false;
}

bool EvalStablePredicate(const BoundPredicate& pred, const Value& value) {
  if (value.is_null()) return false;
  switch (pred.op) {
    case ComparisonOp::kEq:
      return value == pred.value;
    case ComparisonOp::kNe:
      return !(value == pred.value);
    case ComparisonOp::kLt:
      return value.Compare(pred.value) < 0;
    case ComparisonOp::kLe:
      return value.Compare(pred.value) <= 0;
    case ComparisonOp::kGt:
      return value.Compare(pred.value) > 0;
    case ComparisonOp::kGe:
      return value.Compare(pred.value) >= 0;
    case ComparisonOp::kBetween:
      return value.Compare(pred.value) >= 0 && value.Compare(pred.value2) <= 0;
    case ComparisonOp::kLike:
      return value.type() == ValueType::kString && MatchLike(value.str(), pred);
  }
  return false;
}

/// Streams the heap sequentially in batches of `batch_rows` RowViews,
/// walking the table's partitions in order (the resume position carries the
/// current partition plus the heap position inside it) and re-acquiring one
/// partition's shared latch per batch so a slow consumer never blocks
/// writers or the degrader on any partition. Isolation is
/// snapshot-per-batch (standard cursor semantics): rows inserted, deleted
/// or degraded between two pulls may or may not be observed. This is the
/// resolved-parallelism-1 path: no threads, rows in (partition, heap)
/// order.
class HeapScanSource : public RowSource {
 public:
  HeapScanSource(Session* session, const BoundQuery& query, size_t batch_rows)
      : read_options_(session->read_options()),
        counters_(session->db()->scan_counters()),
        query_(query),
        batch_rows_(batch_rows) {}

  Result<bool> NextBatch(EvaluatedBatch* out) override {
    out->Clear();
    // Keep pulling heap batches until one yields a qualifying row (a batch
    // may be fully filtered by σ) or the scan ends.
    while (out->size == 0) {
      if (done_) return false;
      views_.clear();
      IDB_RETURN_IF_ERROR(
          query_.table->ScanBatch(&pos_, batch_rows_, &views_, &done_));
      if (views_.empty()) continue;  // exhausted partitions; done_ decides
      EvaluateViews(query_, read_options_, views_, out);
      counters_->batches.fetch_add(1, std::memory_order_relaxed);
      counters_->rows.fetch_add(views_.size(), std::memory_order_relaxed);
    }
    return true;
  }

 private:
  const ReadOptions read_options_;
  Database::ScanCounters* const counters_;
  const BoundQuery& query_;
  const size_t batch_rows_;
  TableScanPos pos_;
  bool done_ = false;
  std::vector<RowView> views_;
};

/// Partition fan-out source: `workers` prefetch threads claim whole
/// partitions from a shared counter, pull ScanBatch batches under that
/// partition's shared latch, run whole-batch σ, and push the qualifying
/// batches into a bounded queue the consumer drains. Per-batch snapshot
/// semantics are exactly the sequential source's — parallelism changes only
/// which partitions' batches interleave, never what one batch may contain.
/// Batch storage circulates: drained batches return to a spare pool the
/// workers refill, so a steady-state scan stops allocating. The queue bound
/// backpressures workers when the consumer is slow; the consumer counts a
/// prefetch stall each time it finds the queue empty while workers are
/// still producing.
class ParallelScanSource : public RowSource {
 public:
  ParallelScanSource(Session* session, const BoundQuery& query,
                     size_t batch_rows, size_t workers, size_t queue_batches)
      : read_options_(session->read_options()),
        counters_(session->db()->scan_counters()),
        query_(query),
        batch_rows_(batch_rows),
        queue_capacity_(std::max<size_t>(queue_batches, 1)) {
    producers_live_ = std::min<size_t>(
        std::max<size_t>(workers, 1), query.table->num_partitions());
    runner_.Start(producers_live_, [this](size_t) { ProduceLoop(); });
  }

  ~ParallelScanSource() override {
    {
      // The lock orders the store against a producer's wait predicate so
      // the notify cannot fall between its check and its sleep.
      std::lock_guard<std::mutex> lock(mu_);
      closed_.store(true, std::memory_order_relaxed);
    }
    cv_.notify_all();
    runner_.Join();
  }

  Result<bool> NextBatch(EvaluatedBatch* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    bool stalled = false;
    while (true) {
      if (!error_.ok()) return error_;
      if (!queue_.empty()) {
        out->Clear();
        out->Swap(&queue_.front());
        // The swapped-out storage (the consumer's previous batch) goes back
        // to the spare pool for a worker to refill.
        spares_.push_back(std::move(queue_.front()));
        queue_.pop_front();
        cv_.notify_all();
        return true;
      }
      if (producers_live_ == 0) return false;
      // One stall per pull that found the queue empty — not one per wakeup,
      // or producer-exit notifications would inflate the producer-bound
      // signal the benches read.
      if (!stalled) {
        stalled = true;
        counters_->prefetch_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      cv_.wait(lock);
    }
  }

 private:
  void ProduceLoop() {
    const uint32_t partitions = query_.table->num_partitions();
    std::vector<RowView> views;
    EvaluatedBatch batch;
    Status status;
    for (;;) {
      const uint32_t p =
          next_partition_.fetch_add(1, std::memory_order_relaxed);
      if (p >= partitions) break;
      PartitionCursor cursor = query_.table->OpenPartitionCursor(p);
      bool done = false;
      while (!done) {
        // An early Close (cursor dropped mid-stream) must not keep workers
        // scanning the rest of the table before the destructor can join.
        if (closed_.load(std::memory_order_relaxed)) return;
        views.clear();
        status = cursor.NextBatch(batch_rows_, &views, &done);
        if (!status.ok()) break;
        if (views.empty()) continue;
        batch.Clear();
        EvaluateViews(query_, read_options_, views, &batch);
        counters_->batches.fetch_add(1, std::memory_order_relaxed);
        counters_->rows.fetch_add(views.size(), std::memory_order_relaxed);
        if (batch.size == 0) continue;  // fully filtered: recycle in place,
                                        // no reason to touch the queue lock
        std::unique_lock<std::mutex> lock(mu_);
        while (queue_.size() >= queue_capacity_ &&
               !closed_.load(std::memory_order_relaxed)) {
          cv_.wait(lock);
        }
        if (closed_.load(std::memory_order_relaxed)) return;
        queue_.emplace_back();
        queue_.back().Swap(&batch);
        if (!spares_.empty()) {
          // Refill our working storage from the spare pool so the batch we
          // just published keeps its buffers.
          batch.Swap(&spares_.back());
          spares_.pop_back();
        }
        cv_.notify_all();
      }
      if (!status.ok()) break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && error_.ok()) error_ = status;
    --producers_live_;
    cv_.notify_all();
  }

  const ReadOptions read_options_;
  Database::ScanCounters* const counters_;
  const BoundQuery& query_;
  const size_t batch_rows_;
  const size_t queue_capacity_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<EvaluatedBatch> queue_;
  std::vector<EvaluatedBatch> spares_;
  Status error_;
  size_t producers_live_ = 0;
  /// Atomic so producers can poll it between batches without the mutex.
  std::atomic<bool> closed_{false};
  std::atomic<uint32_t> next_partition_{0};
  ParallelRunner runner_;
};

/// Materializing-path source: every partition is read atomically under its
/// shared latch with σ applied inside the scan callback, so only qualifying
/// rows are ever held — the pre-cursor executor's exact memory and
/// consistency profile. With resolved parallelism > 1, partitions drain on
/// ParallelFor threads (spawned per scan, sized like the degradation
/// pool; small tables resolve to 1 and stay inline), and the per-partition
/// results merge in partition order, so the output order matches the
/// sequential scan's regardless of parallelism. Used when the caller asks
/// for an unbounded batch (Session::Execute, DELETE, aggregates).
class SnapshotScanSource : public RowSource {
 public:
  SnapshotScanSource(Session* session, const BoundQuery& query,
                     size_t workers)
      : session_(session), query_(query), workers_(workers) {}

  Result<bool> NextBatch(EvaluatedBatch* out) override {
    if (!scanned_) {
      scanned_ = true;
      IDB_RETURN_IF_ERROR(ScanAll());
    }
    if (served_ || result_.size == 0) return false;
    served_ = true;
    out->Clear();
    out->Swap(&result_);
    return true;
  }

 private:
  Status ScanAll() {
    const Table* table = query_.table;
    const uint32_t partitions = table->num_partitions();
    const ReadOptions read_options = session_->read_options();
    auto* counters = session_->db()->scan_counters();
    std::vector<std::vector<EvaluatedRow>> per_partition(partitions);
    IDB_RETURN_IF_ERROR(ParallelFor(workers_, partitions, [&](size_t p) {
      bool stopped = false;
      uint64_t scanned = 0;
      EvaluatedRow row;
      IDB_RETURN_IF_ERROR(table->partition(static_cast<uint32_t>(p))
                              ->ScanRows(
                                  [&](const RowView& view) {
                                    ++scanned;
                                    if (EvaluateRow(query_, read_options, view,
                                                    &row)) {
                                      per_partition[p].push_back(
                                          std::move(row));
                                    }
                                    return true;
                                  },
                                  &stopped));
      counters->batches.fetch_add(1, std::memory_order_relaxed);
      counters->rows.fetch_add(scanned, std::memory_order_relaxed);
      return Status::OK();
    }));
    for (auto& rows : per_partition) {
      for (EvaluatedRow& row : rows) *result_.Add() = std::move(row);
    }
    return Status::OK();
  }

  Session* const session_;
  const BoundQuery& query_;
  const size_t workers_;
  bool scanned_ = false;
  bool served_ = false;
  EvaluatedBatch result_;
};

/// Probes the multi-resolution index once (row ids only — cheap), then
/// fetches and evaluates rows batch-at-a-time.
class IndexScanSource : public RowSource {
 public:
  IndexScanSource(Session* session, const BoundQuery& query,
                  std::vector<RowId> rids, size_t batch_rows)
      : read_options_(session->read_options()),
        counters_(session->db()->scan_counters()),
        query_(query),
        rids_(std::move(rids)),
        batch_rows_(std::max<size_t>(batch_rows, 1)) {}

  Result<bool> NextBatch(EvaluatedBatch* out) override {
    out->Clear();
    while (out->size == 0 && next_ < rids_.size()) {
      uint64_t fetched = 0;
      while (next_ < rids_.size() && out->size < batch_rows_) {
        IDB_ASSIGN_OR_RETURN(auto view, query_.table->GetRow(rids_[next_++]));
        if (!view.has_value()) continue;
        ++fetched;
        EvaluatedRow* slot = out->Add();
        if (!EvaluateRow(query_, read_options_, *view, slot)) out->DropLast();
      }
      counters_->batches.fetch_add(1, std::memory_order_relaxed);
      counters_->rows.fetch_add(fetched, std::memory_order_relaxed);
    }
    return out->size > 0;
  }

 private:
  const ReadOptions read_options_;
  Database::ScanCounters* const counters_;
  const BoundQuery& query_;
  std::vector<RowId> rids_;
  const size_t batch_rows_;
  size_t next_ = 0;
};

}  // namespace

Result<bool> RowSource::Next(EvaluatedRow* out) {
  while (adapter_next_ >= adapter_batch_.size) {
    if (adapter_done_) return false;
    adapter_next_ = 0;
    IDB_ASSIGN_OR_RETURN(const bool more, NextBatch(&adapter_batch_));
    if (!more) {
      adapter_done_ = true;
      return false;
    }
  }
  *out = std::move(adapter_batch_.rows[adapter_next_++]);
  return true;
}

void EvaluateViews(const BoundQuery& query, const ReadOptions& read_options,
                   const std::vector<RowView>& views, EvaluatedBatch* out) {
  for (const RowView& view : views) {
    EvaluatedRow* slot = out->Add();
    if (!EvaluateRow(query, read_options, view, slot)) out->DropLast();
  }
}

size_t ResolveScanParallelism(Session* session, const Table& table) {
  const size_t partitions = table.num_partitions();
  size_t parallelism = session->scan_options().parallelism;
  if (parallelism == 0) {
    // Auto mode stays inline on small tables: thread create/join costs tens
    // of microseconds per worker, which dwarfs the whole scan of a table a
    // few batches long (point SELECTs, small aggregates, DELETEs). An
    // explicit parallelism setting is always honored.
    if (table.live_rows() < kParallelScanMinRows) return 1;
    const size_t pool = std::max<size_t>(
        session->db()->options().degradation.worker_threads, 1);
    parallelism = std::min(partitions, pool);
  }
  return std::max<size_t>(std::min(parallelism, partitions), 1);
}

Result<BoundQuery> BindQuery(Session* session, const std::string& table_name,
                             const std::vector<PredicateAst>& where,
                             const std::vector<int>& projected_columns) {
  BoundQuery query;
  const TableDef* def = ResolveTableName(session->db()->catalog(), table_name,
                                         /*allow_prefix=*/false);
  if (def == nullptr) {
    return Status::NotFound("no such table: " + table_name);
  }
  query.table = session->db()->GetTable(def->id);
  const Schema& schema = query.table->schema();

  for (const PredicateAst& ast : where) {
    BoundPredicate pred;
    IDB_RETURN_IF_ERROR(BindPredicate(schema, session, def->id, ast, &pred));
    if (pred.degradable) {
      query.referenced_degradable.insert(pred.column);
      query.accuracy[pred.column] = pred.level;
    }
    query.predicates.push_back(std::move(pred));
  }
  for (int col : projected_columns) {
    if (col >= 0 && schema.column(col).kind == ColumnKind::kDegradable) {
      query.referenced_degradable.insert(col);
      query.accuracy[col] = session->AccuracyFor(def->id, col);
    }
  }
  return query;
}

bool EvaluateRow(const BoundQuery& query, const ReadOptions& read_options,
                 const RowView& view, EvaluatedRow* out) {
  const Schema& schema = query.table->schema();
  out->row_id = view.row_id;
  out->values = view.values;
  out->degradable_level.clear();

  // Computability (σ over ∪_{j≤k} ST_j) and f_k generalization.
  for (int col : query.referenced_degradable) {
    const ColumnDef& column = schema.column(col);
    const int ordinal = schema.DegradableOrdinal(col);
    const int phase = view.phases[ordinal];
    const int k = query.accuracy.at(col);
    if (phase >= column.lcp.num_phases()) {
      return false;  // value removed (⊥): never computable
    }
    const int stored_level = column.lcp.phase(phase).level;
    if (stored_level > k && !read_options.include_coarser) {
      return false;  // coarser than demanded: not in any ST_{j<=k}
    }
    const int target_level = std::max(stored_level, k);
    Value vk = view.values[col];
    if (stored_level < target_level) {
      auto generalized =
          column.hierarchy->Generalize(vk, stored_level, target_level);
      if (!generalized.ok()) return false;
      vk = *generalized;
    }
    out->values[col] = vk;
    out->degradable_level.Set(col, target_level);
  }

  // σ_P over the generalized image.
  for (const BoundPredicate& pred : query.predicates) {
    const ColumnDef& column = schema.column(pred.column);
    if (pred.degradable) {
      const int level = out->degradable_level.Get(pred.column);
      if (!EvalDegradablePredicate(*column.hierarchy, pred,
                                   out->values[pred.column], level)) {
        return false;
      }
    } else {
      if (!EvalStablePredicate(pred, out->values[pred.column])) return false;
    }
  }
  return true;
}

std::string RenderValue(const Schema& schema, int col, const Value& value,
                        const DegradableLevels& levels) {
  const ColumnDef& column = schema.column(col);
  if (value.is_null()) return "NULL";
  if (column.kind == ColumnKind::kDegradable) {
    return column.hierarchy->DisplayValue(value, levels.Get(col, 0));
  }
  return value.ToString();
}

Result<std::unique_ptr<RowSource>> MakeRowSource(Session* session,
                                                 const BoundQuery& query,
                                                 size_t scan_batch_rows) {
  const ReadOptions& read_options = session->read_options();
  const BoundPredicate* index_pred = nullptr;
  if (session->use_indexes() && !read_options.include_coarser) {
    for (const BoundPredicate& pred : query.predicates) {
      if (pred.degradable && pred.index_usable) {
        index_pred = &pred;
        break;
      }
    }
  }
  if (index_pred != nullptr) {
    std::vector<RowId> rids;
    if (index_pred->op == ComparisonOp::kBetween) {
      IDB_RETURN_IF_ERROR(query.table->IndexLookupRange(
          index_pred->column, index_pred->value, index_pred->value2,
          index_pred->level, &rids));
    } else {
      // Equality / label-LIKE: probe at the literal's own level so every
      // computable phase tree is visited.
      IDB_RETURN_IF_ERROR(query.table->IndexLookupEqual(
          index_pred->column, index_pred->value,
          std::max(index_pred->literal_level, index_pred->level), &rids));
    }
    std::sort(rids.begin(), rids.end());
    return std::unique_ptr<RowSource>(new IndexScanSource(
        session, query, std::move(rids),
        scan_batch_rows == SIZE_MAX ? kStreamingScanBatchRows
                                    : scan_batch_rows));
  }
  const size_t parallelism = ResolveScanParallelism(session, *query.table);
  if (scan_batch_rows == SIZE_MAX) {
    return std::unique_ptr<RowSource>(
        new SnapshotScanSource(session, query, parallelism));
  }
  if (parallelism <= 1) {
    return std::unique_ptr<RowSource>(
        new HeapScanSource(session, query, scan_batch_rows));
  }
  size_t queue_batches = session->scan_options().prefetch_batches;
  if (queue_batches == 0) queue_batches = 2 * parallelism;
  return std::unique_ptr<RowSource>(new ParallelScanSource(
      session, query, scan_batch_rows, parallelism, queue_batches));
}

Result<SelectPlan> BindSelect(Session* session, const SelectAst& ast) {
  SelectPlan select;
  {
    const TableDef* def = ResolveTableName(session->db()->catalog(), ast.table,
                                           /*allow_prefix=*/false);
    if (def == nullptr) return Status::NotFound("no such table: " + ast.table);
    select.schema = &def->schema;
  }
  const Schema& schema = *select.schema;

  select.items = ast.items;
  if (ast.star) {
    for (int i = 0; i < schema.num_columns(); ++i) {
      select.items.push_back(
          SelectItem{AggregateKind::kNone, schema.column(i).name});
    }
  }

  std::vector<int> projected;
  for (const SelectItem& item : select.items) {
    if (item.aggregate != AggregateKind::kNone) select.has_aggregate = true;
    int col = -1;
    if (!item.column.empty()) {
      col = ResolveColumnName(schema, item.column);
      if (col < 0) {
        return Status::InvalidArgument("unknown column: " + item.column);
      }
      projected.push_back(col);
    }
    select.item_columns.push_back(col);
    switch (item.aggregate) {
      case AggregateKind::kNone:
        select.output_columns.push_back(item.column);
        break;
      case AggregateKind::kCount:
        select.output_columns.push_back(
            item.column.empty() ? "COUNT(*)" : "COUNT(" + item.column + ")");
        break;
      case AggregateKind::kSum:
        select.output_columns.push_back("SUM(" + item.column + ")");
        break;
      case AggregateKind::kAvg:
        select.output_columns.push_back("AVG(" + item.column + ")");
        break;
      case AggregateKind::kMin:
        select.output_columns.push_back("MIN(" + item.column + ")");
        break;
      case AggregateKind::kMax:
        select.output_columns.push_back("MAX(" + item.column + ")");
        break;
    }
  }
  if (!ast.group_by.empty()) {
    select.group_col = ResolveColumnName(schema, ast.group_by);
    if (select.group_col < 0) {
      return Status::InvalidArgument("unknown column: " + ast.group_by);
    }
    projected.push_back(select.group_col);
    select.has_aggregate = true;
  }

  IDB_ASSIGN_OR_RETURN(select.query,
                       BindQuery(session, ast.table, ast.where, projected));
  return select;
}

}  // namespace plan
}  // namespace instantdb
