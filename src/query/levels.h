#ifndef INSTANTDB_QUERY_LEVELS_H_
#define INSTANTDB_QUERY_LEVELS_H_

#include <utility>
#include <vector>

namespace instantdb {

/// Per-row effective accuracy levels of the referenced degradable columns
/// (column index -> level), carried from σ evaluation to display rendering.
/// A row references at most a handful of degradable columns, so this is a
/// flat (column, level) vector with linear lookup — unlike a map it holds
/// its capacity across clear(), which is what lets batch operators reuse one
/// allocation for every row of a scan.
class DegradableLevels {
 public:
  void clear() { levels_.clear(); }
  void Set(int column, int level) {
    for (auto& entry : levels_) {
      if (entry.first == column) {
        entry.second = level;
        return;
      }
    }
    levels_.emplace_back(column, level);
  }
  /// Level recorded for `column`, or `fallback` when absent.
  int Get(int column, int fallback = 0) const {
    for (const auto& entry : levels_) {
      if (entry.first == column) return entry.second;
    }
    return fallback;
  }
  bool empty() const { return levels_.empty(); }

 private:
  std::vector<std::pair<int, int>> levels_;
};

}  // namespace instantdb

#endif  // INSTANTDB_QUERY_LEVELS_H_
