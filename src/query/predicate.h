#ifndef INSTANTDB_QUERY_PREDICATE_H_
#define INSTANTDB_QUERY_PREDICATE_H_

#include <string>
#include <vector>

#include "db/scan_spec.h"
#include "query/plan.h"

/// \file
/// \brief Vectorized stable-column predicate kernels: the query layer's
/// implementation of the db layer's TupleFilter pushdown hook.
///
/// A WHERE conjunction splits into stable-column terms and degradable-column
/// terms. Every stable term is compilable into a ColumnPredicate — the
/// column resolved to its position in the heap tuple's stable vector once,
/// at plan time — and the conjunction of those kernels runs batch-at-a-time
/// directly on decoded heap tuples, BEFORE any state-store probe or RowView
/// assembly. Degradable terms stay above assembly (they need the stored
/// phase); EvaluateRow re-checks only them when told the stable part was
/// prefiltered.

namespace instantdb {
namespace plan {

/// Scalar predicate evaluators shared by the row-at-a-time path
/// (EvaluateRow) and the vector kernels.
bool MatchLike(const std::string& text, const BoundPredicate& pred);
bool EvalStablePredicate(const BoundPredicate& pred, const Value& value);

/// One stable-column WHERE conjunct compiled against the schema: the bound
/// predicate plus the column's ordinal in HeapTuple::stable, so batch
/// evaluation never goes through schema lookups or full-width value
/// vectors. The BoundPredicate must outlive the kernel (it lives in the
/// BoundQuery the scan source already borrows).
class ColumnPredicate {
 public:
  ColumnPredicate(const Schema& schema, const BoundPredicate* pred);

  bool Matches(const HeapTuple& tuple) const {
    return EvalStablePredicate(*pred_, tuple.stable[stable_ordinal_]);
  }

  /// Vector form. `refine == false` fills `*sel` with the indexes in
  /// [0, n) that match; `refine == true` compacts the existing selection in
  /// place, keeping only survivors — so a conjunction evaluates its first
  /// kernel over the batch and every later kernel over the shrinking
  /// selection only.
  void FilterBatch(const HeapTuple* tuples, size_t n, bool refine,
                   std::vector<uint32_t>* sel) const;

 private:
  const BoundPredicate* pred_;
  int stable_ordinal_ = 0;
};

/// The conjunction of every stable-column term of a bound WHERE clause:
/// what the scan sources install below row assembly. Degradable terms are
/// ignored here — they are exactly what EvaluateRow still checks above.
class StablePredicateFilter : public TupleFilter {
 public:
  StablePredicateFilter() = default;
  StablePredicateFilter(const Schema& schema,
                        const std::vector<BoundPredicate>& predicates);

  bool empty() const { return kernels_.empty(); }

  void SelectStable(const HeapTuple* tuples, size_t n,
                    std::vector<uint32_t>* sel) const override;

 private:
  std::vector<ColumnPredicate> kernels_;
};

}  // namespace plan
}  // namespace instantdb

#endif  // INSTANTDB_QUERY_PREDICATE_H_
