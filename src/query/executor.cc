#include "query/executor.h"

#include <cstdint>
#include <map>

#include "common/strings.h"
#include "query/cursor.h"
#include "query/plan.h"

namespace instantdb {

namespace {

/// SELECT: open the cursor pipeline (streaming for plain selects, buffered
/// for aggregates — Cursor::Open plans once and dispatches) and drain it.
/// This keeps Execute and ExecuteCursor behaviorally identical — Execute is
/// just "drain into a QueryResult".
Result<QueryResult> DrainSelectCursor(Session* session,
                                      const StatementAst& statement) {
  // SIZE_MAX batch: every partition is scanned atomically under its shared
  // latch (fanned out over the worker pool, merged in partition order), so
  // a materialized Execute keeps the pre-cursor snapshot semantics.
  IDB_ASSIGN_OR_RETURN(std::unique_ptr<Cursor> cursor,
                       Cursor::Open(session, statement, SIZE_MAX));
  QueryResult result;
  result.columns = cursor->columns();
  CursorBatch* batch = nullptr;
  while (true) {
    IDB_ASSIGN_OR_RETURN(const bool more, cursor->NextBatch(&batch));
    if (!more) break;
    result.rows.reserve(result.rows.size() + batch->size());
    result.display.reserve(result.display.size() + batch->size());
    for (size_t i = 0; i < batch->size(); ++i) {
      // Single-pass drain: move rows out of the batch instead of deep-
      // copying the (possibly whole-table) result a second time. Display
      // first — rendering reads the values the second Take empties.
      result.display.push_back(batch->TakeDisplay(i));
      result.rows.push_back(batch->TakeValues(i));
    }
  }
  result.affected_rows = result.rows.size();
  return result;
}

}  // namespace

/// Aggregation (optionally grouped by one column), pulling evaluated rows
/// straight from the scan → σ source: no intermediate materialization of
/// the qualifying set.
Result<QueryResult> ExecuteAggregate(Session* session,
                                     const plan::SelectPlan& select) {
  const Schema& schema = *select.schema;
  const auto& items = select.items;

  struct AggState {
    Value group_value;
    DegradableLevels group_levels;
    uint64_t count = 0;
    std::vector<double> sums;
    std::vector<Value> mins, maxs;
    std::vector<uint64_t> non_null;
  };
  std::map<std::string, AggState> groups;

  if (plan::CanPushAggregate(session, select)) {
    // Ungrouped all-aggregate query: partials computed inside the scan
    // workers (stable predicates below row assembly, state stores skipped
    // when no degradable column is referenced), merged here. Rendering
    // below is shared with the row-at-a-time path.
    IDB_ASSIGN_OR_RETURN(plan::AggregatePartials partial,
                         plan::ExecuteAggregatePushdown(session, select));
    if (partial.count > 0) {
      AggState& state = groups["*"];
      state.count = partial.count;
      state.sums = std::move(partial.sums);
      state.mins = std::move(partial.mins);
      state.maxs = std::move(partial.maxs);
      state.non_null = std::move(partial.non_null);
    }
  } else {
    IDB_ASSIGN_OR_RETURN(std::unique_ptr<plan::RowSource> source,
                         plan::MakeRowSource(session, select.query, SIZE_MAX));
    plan::EvaluatedRow row;
    while (true) {
      IDB_ASSIGN_OR_RETURN(const bool more, source->Next(&row));
      if (!more) break;
      std::string key = "*";
      if (select.group_col >= 0) {
        key = plan::RenderValue(schema, select.group_col,
                                row.values[select.group_col],
                                row.degradable_level);
      }
      AggState& state = groups[key];
      if (state.count == 0) {
        state.sums.assign(items.size(), 0);
        state.mins.assign(items.size(), Value::Null());
        state.maxs.assign(items.size(), Value::Null());
        state.non_null.assign(items.size(), 0);
        if (select.group_col >= 0) {
          state.group_value = row.values[select.group_col];
          state.group_levels = row.degradable_level;
        }
      }
      ++state.count;
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].aggregate == AggregateKind::kNone ||
            items[i].column.empty()) {
          continue;
        }
        const Value& v = row.values[select.item_columns[i]];
        if (v.is_null()) continue;
        ++state.non_null[i];
        if (v.type() == ValueType::kInt64 ||
            v.type() == ValueType::kTimestamp) {
          state.sums[i] += static_cast<double>(v.int64());
        } else if (v.type() == ValueType::kDouble) {
          state.sums[i] += v.dbl();
        }
        if (state.mins[i].is_null() || v.Compare(state.mins[i]) < 0) {
          state.mins[i] = v;
        }
        if (state.maxs[i].is_null() || v.Compare(state.maxs[i]) > 0) {
          state.maxs[i] = v;
        }
      }
    }
  }

  QueryResult result;
  result.columns = select.output_columns;
  for (auto& [key, state] : groups) {
    std::vector<Value> out;
    std::vector<std::string> rendered;
    for (size_t i = 0; i < items.size(); ++i) {
      const SelectItem& item = items[i];
      switch (item.aggregate) {
        case AggregateKind::kNone: {
          if (select.item_columns[i] != select.group_col) {
            return Status::InvalidArgument(
                "non-aggregate column must be the GROUP BY column");
          }
          out.push_back(state.group_value);
          rendered.push_back(key);
          break;
        }
        case AggregateKind::kCount: {
          const uint64_t n =
              item.column.empty() ? state.count : state.non_null[i];
          out.push_back(Value::Int64(static_cast<int64_t>(n)));
          rendered.push_back(out.back().ToString());
          break;
        }
        case AggregateKind::kSum:
          out.push_back(Value::Double(state.sums[i]));
          rendered.push_back(StringPrintf("%.6g", state.sums[i]));
          break;
        case AggregateKind::kAvg: {
          const double avg =
              state.non_null[i] == 0
                  ? 0
                  : state.sums[i] / static_cast<double>(state.non_null[i]);
          out.push_back(Value::Double(avg));
          rendered.push_back(StringPrintf("%.6g", avg));
          break;
        }
        case AggregateKind::kMin:
          out.push_back(state.mins[i]);
          rendered.push_back(out.back().ToString());
          break;
        case AggregateKind::kMax:
          out.push_back(state.maxs[i]);
          rendered.push_back(out.back().ToString());
          break;
      }
    }
    result.rows.push_back(std::move(out));
    result.display.push_back(std::move(rendered));
  }
  result.affected_rows = result.rows.size();
  return result;
}

namespace {

Result<QueryResult> ExecuteInsert(Session* session, const InsertAst& ast) {
  const TableDef* def = ResolveTableName(session->db()->catalog(), ast.table,
                                         /*allow_prefix=*/false);
  if (def == nullptr) return Status::NotFound("no such table: " + ast.table);
  std::vector<Value> row = ast.values;
  // Coerce integer literals into timestamp columns.
  for (size_t i = 0;
       i < row.size() && i < static_cast<size_t>(def->schema.num_columns());
       ++i) {
    if (def->schema.column(static_cast<int>(i)).type == ValueType::kTimestamp &&
        row[i].type() == ValueType::kInt64) {
      row[i] = Value::Timestamp(row[i].int64());
    }
  }
  IDB_ASSIGN_OR_RETURN(RowId row_id, session->db()->Insert(def->name, row));
  QueryResult result;
  result.affected_rows = 1;
  result.last_insert_id = row_id;
  result.statement = StatementKind::kInsert;
  return result;
}

Result<QueryResult> ExecuteDelete(Session* session, const DeleteAst& ast) {
  IDB_ASSIGN_OR_RETURN(plan::BoundQuery query,
                       plan::BindQuery(session, ast.table, ast.where, {}));

  // View-style delete (paper §II): the predicate selects at the session's
  // accuracy; the delete removes both stable and degradable parts.
  IDB_ASSIGN_OR_RETURN(std::unique_ptr<plan::RowSource> source,
                       plan::MakeRowSource(session, query, SIZE_MAX));
  auto txn = session->db()->Begin();
  uint64_t deleted = 0;
  plan::EvaluatedRow row;
  while (true) {
    auto more = source->Next(&row);
    if (!more.ok()) {
      session->db()->Abort(txn.get());
      return more.status();
    }
    if (!*more) break;
    const Status status = query.table->Delete(txn.get(), row.row_id);
    if (status.ok()) {
      ++deleted;
    } else if (!status.IsNotFound()) {
      session->db()->Abort(txn.get());
      return status;
    }
  }
  IDB_RETURN_IF_ERROR(session->db()->Commit(txn.get()));
  QueryResult result;
  result.affected_rows = deleted;
  result.statement = StatementKind::kDelete;
  return result;
}

}  // namespace

Result<QueryResult> ExecuteStatement(Session* session,
                                     const StatementAst& statement) {
  if (std::get_if<SelectAst>(&statement) != nullptr) {
    return DrainSelectCursor(session, statement);
  }
  if (const auto* insert = std::get_if<InsertAst>(&statement)) {
    return ExecuteInsert(session, *insert);
  }
  if (const auto* del = std::get_if<DeleteAst>(&statement)) {
    return ExecuteDelete(session, *del);
  }
  if (const auto* declare = std::get_if<DeclarePurposeAst>(&statement)) {
    IDB_RETURN_IF_ERROR(
        session->DeclarePurpose(declare->name, declare->clauses));
    QueryResult result;
    result.statement = StatementKind::kCommand;
    return result;
  }
  if (const auto* use = std::get_if<UsePurposeAst>(&statement)) {
    IDB_RETURN_IF_ERROR(session->UsePurpose(use->name));
    QueryResult result;
    result.statement = StatementKind::kCommand;
    return result;
  }
  return Status::NotSupported("unhandled statement kind");
}

}  // namespace instantdb
