#include "query/executor.h"

#include <algorithm>
#include <cctype>
#include <climits>
#include <map>
#include <set>

#include "common/strings.h"

namespace instantdb {

namespace {

/// A WHERE conjunct after binding: resolved column, effective accuracy
/// level, and (for degradable columns) the literal normalized to a
/// hierarchy node with its leaf interval.
struct BoundPredicate {
  int column = -1;
  bool degradable = false;
  int level = 0;  // accuracy k of this column under the active purpose
  ComparisonOp op = ComparisonOp::kEq;
  Value value;
  Value value2;

  // Degradable Eq/Like-as-label/Between: literal as hierarchy node.
  int literal_level = -1;
  LeafInterval literal_interval;
  LeafInterval literal_interval2;  // BETWEEN upper bound
  bool index_usable = false;

  // Unresolved LIKE: case-insensitive substring match flags.
  std::string like_core;
  bool like_prefix_wildcard = false;  // pattern starts with %
  bool like_suffix_wildcard = false;  // pattern ends with %
};

struct BoundQuery {
  Table* table = nullptr;
  std::vector<BoundPredicate> predicates;
  /// Accuracy per referenced degradable column index.
  std::map<int, int> accuracy;
  /// Referenced degradable column indexes (projection + predicates).
  std::set<int> referenced_degradable;
};

bool ContainsIgnoreCase(const std::string& haystack,
                        const std::string& needle) {
  if (needle.empty()) return true;
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end(), [](char a, char b) {
                          return std::toupper(static_cast<unsigned char>(a)) ==
                                 std::toupper(static_cast<unsigned char>(b));
                        });
  return it != haystack.end();
}

bool MatchLike(const std::string& text, const BoundPredicate& pred) {
  const std::string& core = pred.like_core;
  if (pred.like_prefix_wildcard && pred.like_suffix_wildcard) {
    return ContainsIgnoreCase(text, core);
  }
  if (pred.like_prefix_wildcard) {  // %core — suffix match
    return text.size() >= core.size() &&
           EqualsIgnoreCase(text.substr(text.size() - core.size()), core);
  }
  if (pred.like_suffix_wildcard) {  // core% — prefix match
    return text.size() >= core.size() &&
           EqualsIgnoreCase(text.substr(0, core.size()), core);
  }
  return EqualsIgnoreCase(text, core);
}

/// Finds the level of a literal value in a hierarchy (tree labels can sit at
/// any level; interval bucket bounds at several — prefer the leaf).
Result<int> LiteralLevel(const DomainHierarchy& hierarchy, const Value& value) {
  for (int level = 0; level < hierarchy.height(); ++level) {
    if (hierarchy.ValidateAtLevel(value, level).ok()) return level;
  }
  return Status::InvalidArgument("literal '" + value.ToString() +
                                 "' is not a value of domain " +
                                 hierarchy.name());
}

/// Case-insensitive label lookup across all levels of a tree domain (the
/// paper's `LIKE "%FRANCE%"` names the node "France").
Result<std::pair<Value, int>> ResolveLabel(const DomainHierarchy& hierarchy,
                                           const std::string& label) {
  const auto* tree = dynamic_cast<const GeneralizationTree*>(&hierarchy);
  if (tree == nullptr) {
    return Status::NotFound("not a tree domain");
  }
  for (int level = 0; level < tree->height(); ++level) {
    for (const std::string& candidate : tree->LabelsAtLevel(level)) {
      if (EqualsIgnoreCase(candidate, label)) {
        return std::make_pair(Value::String(candidate), level);
      }
    }
  }
  return Status::NotFound("no label '" + label + "' in domain " +
                          hierarchy.name());
}

/// Parses the paper's bucket literal syntax 'lo-hi' for interval domains.
bool ParseBucketLiteral(const std::string& text, int64_t* lo, int64_t* hi) {
  const size_t dash = text.find('-', 1);
  if (dash == std::string::npos) return false;
  char* end = nullptr;
  *lo = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + dash) return false;
  *hi = std::strtoll(text.c_str() + dash + 1, &end, 10);
  return *end == '\0';
}

Status BindPredicate(const Schema& schema, Session* session, TableId table_id,
                     const PredicateAst& ast, BoundPredicate* out) {
  out->column = ResolveColumnName(schema, ast.column);
  if (out->column < 0) {
    return Status::InvalidArgument("unknown column: " + ast.column);
  }
  const ColumnDef& column = schema.column(out->column);
  out->degradable = column.kind == ColumnKind::kDegradable;
  out->op = ast.op;
  out->value = ast.value;
  out->value2 = ast.value2;
  if (!out->degradable) {
    if (ast.op == ComparisonOp::kLike) {
      std::string pattern = ast.value.str();
      out->like_prefix_wildcard = StartsWith(pattern, "%");
      out->like_suffix_wildcard = EndsWith(pattern, "%") && pattern.size() > 1;
      if (out->like_prefix_wildcard) pattern.erase(0, 1);
      if (out->like_suffix_wildcard && !pattern.empty()) pattern.pop_back();
      out->like_core = pattern;
    }
    return Status::OK();
  }

  const DomainHierarchy& hierarchy = *column.hierarchy;
  out->level = session->AccuracyFor(table_id, out->column);

  switch (ast.op) {
    case ComparisonOp::kEq:
    case ComparisonOp::kNe: {
      Value literal = ast.value;
      if (hierarchy.value_type() == ValueType::kInt64 &&
          literal.type() == ValueType::kString) {
        // '2000-3000' bucket syntax: the width names the level.
        int64_t lo, hi;
        if (!ParseBucketLiteral(literal.str(), &lo, &hi)) {
          return Status::InvalidArgument("bad bucket literal: " +
                                         literal.str());
        }
        const auto* interval =
            static_cast<const IntervalHierarchy*>(&hierarchy);
        IDB_ASSIGN_OR_RETURN(out->literal_level,
                             interval->LevelForWidth(hi - lo));
        literal = Value::Int64(lo);
      } else {
        IDB_ASSIGN_OR_RETURN(out->literal_level,
                             LiteralLevel(hierarchy, literal));
      }
      IDB_ASSIGN_OR_RETURN(out->literal_interval,
                           hierarchy.LeafRange(literal, out->literal_level));
      out->value = literal;
      out->index_usable = ast.op == ComparisonOp::kEq;
      return Status::OK();
    }
    case ComparisonOp::kLike: {
      std::string pattern = ast.value.str();
      out->like_prefix_wildcard = StartsWith(pattern, "%");
      out->like_suffix_wildcard = EndsWith(pattern, "%") && pattern.size() > 1;
      if (out->like_prefix_wildcard) pattern.erase(0, 1);
      if (out->like_suffix_wildcard && !pattern.empty()) pattern.pop_back();
      out->like_core = pattern;
      // `%France%` resolves to the France node: evaluated (and indexed) as
      // an equality against that node's subtree.
      auto label = ResolveLabel(hierarchy, pattern);
      if (label.ok()) {
        out->value = label->first;
        out->literal_level = label->second;
        auto interval = hierarchy.LeafRange(label->first, label->second);
        if (interval.ok()) {
          out->literal_interval = *interval;
          out->index_usable = true;
        }
      }
      return Status::OK();
    }
    case ComparisonOp::kBetween: {
      if (hierarchy.value_type() != ValueType::kInt64) {
        return Status::NotSupported("BETWEEN on categorical domains");
      }
      if (ast.value.type() != ValueType::kInt64 ||
          ast.value2.type() != ValueType::kInt64) {
        return Status::InvalidArgument("BETWEEN bounds must be integers");
      }
      // Bounds generalize to the demanded level's buckets.
      IDB_ASSIGN_OR_RETURN(Value lo,
                           hierarchy.Generalize(ast.value, 0, out->level));
      IDB_ASSIGN_OR_RETURN(Value hi,
                           hierarchy.Generalize(ast.value2, 0, out->level));
      out->value = lo;
      out->value2 = hi;
      out->literal_level = out->level;
      IDB_ASSIGN_OR_RETURN(out->literal_interval,
                           hierarchy.LeafRange(lo, out->level));
      IDB_ASSIGN_OR_RETURN(out->literal_interval2,
                           hierarchy.LeafRange(hi, out->level));
      out->index_usable = true;
      return Status::OK();
    }
    case ComparisonOp::kLt:
    case ComparisonOp::kLe:
    case ComparisonOp::kGt:
    case ComparisonOp::kGe: {
      if (hierarchy.value_type() != ValueType::kInt64) {
        return Status::NotSupported("ordering predicates on categorical domains");
      }
      if (ast.value.type() != ValueType::kInt64) {
        return Status::InvalidArgument("ordering literal must be an integer");
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

/// Evaluates one bound predicate against a value already generalized to
/// `value_level` (== min(k, stored level) under include_coarser).
bool EvalDegradablePredicate(const DomainHierarchy& hierarchy,
                             const BoundPredicate& pred, const Value& value,
                             int value_level) {
  switch (pred.op) {
    case ComparisonOp::kEq:
    case ComparisonOp::kNe: {
      auto row_interval = hierarchy.LeafRange(value, value_level);
      if (!row_interval.ok()) return false;
      const bool contains = pred.literal_interval.Contains(*row_interval);
      return pred.op == ComparisonOp::kEq ? contains : !contains;
    }
    case ComparisonOp::kLike: {
      if (pred.literal_level >= 0) {
        auto row_interval = hierarchy.LeafRange(value, value_level);
        return row_interval.ok() &&
               pred.literal_interval.Contains(*row_interval);
      }
      return MatchLike(hierarchy.DisplayValue(value, value_level), pred);
    }
    case ComparisonOp::kBetween: {
      auto row_interval = hierarchy.LeafRange(value, value_level);
      if (!row_interval.ok()) return false;
      return row_interval->lo >= pred.literal_interval.lo &&
             row_interval->hi <= pred.literal_interval2.hi;
    }
    case ComparisonOp::kLt:
      return value.int64() < pred.value.int64();
    case ComparisonOp::kLe:
      return value.int64() <= pred.value.int64();
    case ComparisonOp::kGt:
      // Bucket lower-bound comparison: a bucket qualifies when it lies
      // entirely above the literal is too strict for coarse levels; we
      // compare lower bounds (documented choice).
      return value.int64() > pred.value.int64();
    case ComparisonOp::kGe:
      return value.int64() >= pred.value.int64();
  }
  return false;
}

bool EvalStablePredicate(const BoundPredicate& pred, const Value& value) {
  if (value.is_null()) return false;
  switch (pred.op) {
    case ComparisonOp::kEq:
      return value == pred.value;
    case ComparisonOp::kNe:
      return !(value == pred.value);
    case ComparisonOp::kLt:
      return value.Compare(pred.value) < 0;
    case ComparisonOp::kLe:
      return value.Compare(pred.value) <= 0;
    case ComparisonOp::kGt:
      return value.Compare(pred.value) > 0;
    case ComparisonOp::kGe:
      return value.Compare(pred.value) >= 0;
    case ComparisonOp::kBetween:
      return value.Compare(pred.value) >= 0 && value.Compare(pred.value2) <= 0;
    case ComparisonOp::kLike:
      return value.type() == ValueType::kString && MatchLike(value.str(), pred);
  }
  return false;
}

/// One materialized output row: schema-ordered values at purpose accuracy,
/// plus the effective level of each degradable column (for display).
struct EvaluatedRow {
  RowId row_id = kInvalidRowId;
  std::vector<Value> values;
  std::map<int, int> degradable_level;  // column -> rendered level
};

/// Applies computability + f_k + σ_P to one stored row.
/// Returns true and fills `out` when the row qualifies.
bool EvaluateRow(const BoundQuery& query, const ReadOptions& read_options,
                 const RowView& view, EvaluatedRow* out) {
  const Schema& schema = query.table->schema();
  out->row_id = view.row_id;
  out->values = view.values;
  out->degradable_level.clear();

  // Computability (σ over ∪_{j≤k} ST_j) and f_k generalization.
  for (int col : query.referenced_degradable) {
    const ColumnDef& column = schema.column(col);
    const int ordinal = schema.DegradableOrdinal(col);
    const int phase = view.phases[ordinal];
    const int k = query.accuracy.at(col);
    if (phase >= column.lcp.num_phases()) {
      return false;  // value removed (⊥): never computable
    }
    const int stored_level = column.lcp.phase(phase).level;
    if (stored_level > k && !read_options.include_coarser) {
      return false;  // coarser than demanded: not in any ST_{j<=k}
    }
    const int target_level = std::max(stored_level, k);
    Value vk = view.values[col];
    if (stored_level < target_level) {
      auto generalized = column.hierarchy->Generalize(vk, stored_level,
                                                      target_level);
      if (!generalized.ok()) return false;
      vk = *generalized;
    }
    out->values[col] = vk;
    out->degradable_level[col] = target_level;
  }

  // σ_P over the generalized image.
  for (const BoundPredicate& pred : query.predicates) {
    const ColumnDef& column = schema.column(pred.column);
    if (pred.degradable) {
      const int level = out->degradable_level.at(pred.column);
      if (!EvalDegradablePredicate(*column.hierarchy, pred,
                                   out->values[pred.column], level)) {
        return false;
      }
    } else {
      if (!EvalStablePredicate(pred, out->values[pred.column])) return false;
    }
  }
  return true;
}

/// Collects qualifying rows, via the multi-resolution index when a usable
/// predicate exists, else by heap scan.
Status CollectRows(Session* session, const BoundQuery& query,
                   std::vector<EvaluatedRow>* out) {
  const ReadOptions& read_options = session->read_options();
  const BoundPredicate* index_pred = nullptr;
  if (session->use_indexes() && !read_options.include_coarser) {
    for (const BoundPredicate& pred : query.predicates) {
      if (pred.degradable && pred.index_usable) {
        index_pred = &pred;
        break;
      }
    }
  }
  if (index_pred != nullptr) {
    std::vector<RowId> rids;
    if (index_pred->op == ComparisonOp::kBetween) {
      IDB_RETURN_IF_ERROR(query.table->IndexLookupRange(
          index_pred->column, index_pred->value, index_pred->value2,
          index_pred->level, &rids));
    } else {
      // Equality / label-LIKE: probe at the literal's own level so every
      // computable phase tree is visited.
      IDB_RETURN_IF_ERROR(query.table->IndexLookupEqual(
          index_pred->column, index_pred->value,
          std::max(index_pred->literal_level, index_pred->level), &rids));
    }
    std::sort(rids.begin(), rids.end());
    for (RowId rid : rids) {
      IDB_ASSIGN_OR_RETURN(auto view, query.table->GetRow(rid));
      if (!view.has_value()) continue;
      EvaluatedRow row;
      if (EvaluateRow(query, read_options, *view, &row)) {
        out->push_back(std::move(row));
      }
    }
    return Status::OK();
  }
  return query.table->ScanRows([&](const RowView& view) {
    EvaluatedRow row;
    if (EvaluateRow(query, read_options, view, &row)) {
      out->push_back(std::move(row));
    }
    return true;
  });
}

std::string RenderValue(const Schema& schema, int col, const Value& value,
                        const std::map<int, int>& levels) {
  const ColumnDef& column = schema.column(col);
  if (value.is_null()) return "NULL";
  if (column.kind == ColumnKind::kDegradable) {
    auto it = levels.find(col);
    const int level = it == levels.end() ? 0 : it->second;
    return column.hierarchy->DisplayValue(value, level);
  }
  return value.ToString();
}

Result<BoundQuery> BindQuery(Session* session, const std::string& table_name,
                             const std::vector<PredicateAst>& where,
                             const std::vector<int>& projected_columns) {
  BoundQuery query;
  const TableDef* def = ResolveTableName(session->db()->catalog(), table_name,
                                         /*allow_prefix=*/false);
  if (def == nullptr) {
    return Status::NotFound("no such table: " + table_name);
  }
  query.table = session->db()->GetTable(def->id);
  const Schema& schema = query.table->schema();

  for (const PredicateAst& ast : where) {
    BoundPredicate pred;
    IDB_RETURN_IF_ERROR(
        BindPredicate(schema, session, def->id, ast, &pred));
    if (pred.degradable) {
      query.referenced_degradable.insert(pred.column);
      query.accuracy[pred.column] = pred.level;
    }
    query.predicates.push_back(std::move(pred));
  }
  for (int col : projected_columns) {
    if (schema.column(col).kind == ColumnKind::kDegradable) {
      query.referenced_degradable.insert(col);
      query.accuracy[col] = session->AccuracyFor(def->id, col);
    }
  }
  return query;
}

// --- statement execution ------------------------------------------------------------

Result<QueryResult> ExecuteSelect(Session* session, const SelectAst& ast) {
  const Schema* schema = nullptr;
  // Resolve projection column indexes first (needed by the binder).
  {
    const TableDef* def = ResolveTableName(session->db()->catalog(), ast.table,
                                           /*allow_prefix=*/false);
    if (def == nullptr) return Status::NotFound("no such table: " + ast.table);
    schema = &def->schema;
  }

  std::vector<SelectItem> items = ast.items;
  if (ast.star) {
    for (int i = 0; i < schema->num_columns(); ++i) {
      items.push_back(SelectItem{AggregateKind::kNone, schema->column(i).name});
    }
  }
  std::vector<int> projected;
  bool has_aggregate = false;
  for (const SelectItem& item : items) {
    if (item.aggregate != AggregateKind::kNone) has_aggregate = true;
    if (!item.column.empty()) {
      const int col = ResolveColumnName(*schema, item.column);
      if (col < 0) return Status::InvalidArgument("unknown column: " + item.column);
      projected.push_back(col);
    }
  }
  int group_col = -1;
  if (!ast.group_by.empty()) {
    group_col = ResolveColumnName(*schema, ast.group_by);
    if (group_col < 0) {
      return Status::InvalidArgument("unknown column: " + ast.group_by);
    }
    projected.push_back(group_col);
    has_aggregate = true;
  }

  IDB_ASSIGN_OR_RETURN(BoundQuery query,
                       BindQuery(session, ast.table, ast.where, projected));
  std::vector<EvaluatedRow> rows;
  IDB_RETURN_IF_ERROR(CollectRows(session, query, &rows));

  QueryResult result;
  if (!has_aggregate) {
    for (const SelectItem& item : items) {
      result.columns.push_back(item.column);
    }
    for (const EvaluatedRow& row : rows) {
      std::vector<Value> out;
      std::vector<std::string> rendered;
      for (const SelectItem& item : items) {
        const int col = ResolveColumnName(*schema, item.column);
        out.push_back(row.values[col]);
        rendered.push_back(RenderValue(*schema, col, row.values[col],
                                       row.degradable_level));
      }
      result.rows.push_back(std::move(out));
      result.display.push_back(std::move(rendered));
    }
    return result;
  }

  // Aggregation (optionally grouped by one column).
  struct AggState {
    Value group_value;
    std::map<int, int> group_levels;
    uint64_t count = 0;
    std::vector<double> sums;
    std::vector<Value> mins, maxs;
    std::vector<uint64_t> non_null;
  };
  std::map<std::string, AggState> groups;
  for (const EvaluatedRow& row : rows) {
    std::string key = "*";
    if (group_col >= 0) {
      key = RenderValue(*schema, group_col, row.values[group_col],
                        row.degradable_level);
    }
    AggState& state = groups[key];
    if (state.count == 0) {
      state.sums.assign(items.size(), 0);
      state.mins.assign(items.size(), Value::Null());
      state.maxs.assign(items.size(), Value::Null());
      state.non_null.assign(items.size(), 0);
      if (group_col >= 0) {
        state.group_value = row.values[group_col];
        state.group_levels = row.degradable_level;
      }
    }
    ++state.count;
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].aggregate == AggregateKind::kNone || items[i].column.empty()) {
        continue;
      }
      const int col = ResolveColumnName(*schema, items[i].column);
      const Value& v = row.values[col];
      if (v.is_null()) continue;
      ++state.non_null[i];
      if (v.type() == ValueType::kInt64 || v.type() == ValueType::kTimestamp) {
        state.sums[i] += static_cast<double>(v.int64());
      } else if (v.type() == ValueType::kDouble) {
        state.sums[i] += v.dbl();
      }
      if (state.mins[i].is_null() || v.Compare(state.mins[i]) < 0) {
        state.mins[i] = v;
      }
      if (state.maxs[i].is_null() || v.Compare(state.maxs[i]) > 0) {
        state.maxs[i] = v;
      }
    }
  }

  for (const SelectItem& item : items) {
    switch (item.aggregate) {
      case AggregateKind::kNone:
        result.columns.push_back(item.column);
        break;
      case AggregateKind::kCount:
        result.columns.push_back(
            item.column.empty() ? "COUNT(*)" : "COUNT(" + item.column + ")");
        break;
      case AggregateKind::kSum:
        result.columns.push_back("SUM(" + item.column + ")");
        break;
      case AggregateKind::kAvg:
        result.columns.push_back("AVG(" + item.column + ")");
        break;
      case AggregateKind::kMin:
        result.columns.push_back("MIN(" + item.column + ")");
        break;
      case AggregateKind::kMax:
        result.columns.push_back("MAX(" + item.column + ")");
        break;
    }
  }
  for (auto& [key, state] : groups) {
    std::vector<Value> out;
    std::vector<std::string> rendered;
    for (size_t i = 0; i < items.size(); ++i) {
      const SelectItem& item = items[i];
      switch (item.aggregate) {
        case AggregateKind::kNone: {
          const int col = ResolveColumnName(*schema, item.column);
          if (col != group_col) {
            return Status::InvalidArgument(
                "non-aggregate column must be the GROUP BY column");
          }
          out.push_back(state.group_value);
          rendered.push_back(key);
          break;
        }
        case AggregateKind::kCount: {
          const uint64_t n =
              item.column.empty() ? state.count : state.non_null[i];
          out.push_back(Value::Int64(static_cast<int64_t>(n)));
          rendered.push_back(out.back().ToString());
          break;
        }
        case AggregateKind::kSum:
          out.push_back(Value::Double(state.sums[i]));
          rendered.push_back(StringPrintf("%.6g", state.sums[i]));
          break;
        case AggregateKind::kAvg: {
          const double avg = state.non_null[i] == 0
                                 ? 0
                                 : state.sums[i] /
                                       static_cast<double>(state.non_null[i]);
          out.push_back(Value::Double(avg));
          rendered.push_back(StringPrintf("%.6g", avg));
          break;
        }
        case AggregateKind::kMin:
          out.push_back(state.mins[i]);
          rendered.push_back(out.back().ToString());
          break;
        case AggregateKind::kMax:
          out.push_back(state.maxs[i]);
          rendered.push_back(out.back().ToString());
          break;
      }
    }
    result.rows.push_back(std::move(out));
    result.display.push_back(std::move(rendered));
  }
  return result;
}

Result<QueryResult> ExecuteInsert(Session* session, const InsertAst& ast) {
  const TableDef* def = ResolveTableName(session->db()->catalog(), ast.table,
                                         /*allow_prefix=*/false);
  if (def == nullptr) return Status::NotFound("no such table: " + ast.table);
  std::vector<Value> row = ast.values;
  // Coerce integer literals into timestamp columns.
  for (size_t i = 0; i < row.size() && i < static_cast<size_t>(def->schema.num_columns());
       ++i) {
    if (def->schema.column(static_cast<int>(i)).type == ValueType::kTimestamp &&
        row[i].type() == ValueType::kInt64) {
      row[i] = Value::Timestamp(row[i].int64());
    }
  }
  IDB_ASSIGN_OR_RETURN(RowId row_id, session->db()->Insert(def->name, row));
  QueryResult result;
  result.affected_rows = 1;
  result.last_insert_id = row_id;
  return result;
}

Result<QueryResult> ExecuteDelete(Session* session, const DeleteAst& ast) {
  IDB_ASSIGN_OR_RETURN(BoundQuery query,
                       BindQuery(session, ast.table, ast.where, {}));
  std::vector<EvaluatedRow> rows;
  IDB_RETURN_IF_ERROR(CollectRows(session, query, &rows));

  // View-style delete (paper §II): the predicate selects at the session's
  // accuracy; the delete removes both stable and degradable parts.
  auto txn = session->db()->Begin();
  for (const EvaluatedRow& row : rows) {
    const Status status = query.table->Delete(txn.get(), row.row_id);
    if (!status.ok() && !status.IsNotFound()) {
      session->db()->Abort(txn.get());
      return status;
    }
  }
  IDB_RETURN_IF_ERROR(session->db()->Commit(txn.get()));
  QueryResult result;
  result.affected_rows = rows.size();
  return result;
}

}  // namespace

Result<QueryResult> ExecuteStatement(Session* session,
                                     const StatementAst& statement) {
  if (const auto* select = std::get_if<SelectAst>(&statement)) {
    return ExecuteSelect(session, *select);
  }
  if (const auto* insert = std::get_if<InsertAst>(&statement)) {
    return ExecuteInsert(session, *insert);
  }
  if (const auto* del = std::get_if<DeleteAst>(&statement)) {
    return ExecuteDelete(session, *del);
  }
  if (const auto* declare = std::get_if<DeclarePurposeAst>(&statement)) {
    IDB_RETURN_IF_ERROR(session->DeclarePurpose(declare->name, declare->clauses));
    return QueryResult{};
  }
  if (const auto* use = std::get_if<UsePurposeAst>(&statement)) {
    IDB_RETURN_IF_ERROR(session->UsePurpose(use->name));
    return QueryResult{};
  }
  return Status::NotSupported("unhandled statement kind");
}

}  // namespace instantdb
