#ifndef INSTANTDB_QUERY_PLAN_H_
#define INSTANTDB_QUERY_PLAN_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "db/table.h"
#include "query/ast.h"
#include "query/session.h"

/// \file
/// \brief Internal query-plan layer shared by the streaming Cursor and the
/// materializing executor: predicate binding, accuracy resolution, and the
/// pull-based row source (scan → σ at accuracy level) that both build on.
///
/// Nothing here is part of the stable public API; embedders should use
/// `Session` / `Cursor` (query/session.h, query/cursor.h).

namespace instantdb {
namespace plan {

/// A WHERE conjunct after binding: resolved column, effective accuracy
/// level, and (for degradable columns) the literal normalized to a
/// hierarchy node with its leaf interval.
struct BoundPredicate {
  int column = -1;
  bool degradable = false;
  int level = 0;  // accuracy k of this column under the active purpose
  ComparisonOp op = ComparisonOp::kEq;
  Value value;
  Value value2;

  // Degradable Eq/Like-as-label/Between: literal as hierarchy node.
  int literal_level = -1;
  LeafInterval literal_interval;
  LeafInterval literal_interval2;  // BETWEEN upper bound
  bool index_usable = false;

  // Unresolved LIKE: case-insensitive substring match flags.
  std::string like_core;
  bool like_prefix_wildcard = false;  // pattern starts with %
  bool like_suffix_wildcard = false;  // pattern ends with %
};

/// One bound table access: σ conjuncts plus the accuracy demanded of every
/// referenced degradable column.
struct BoundQuery {
  Table* table = nullptr;
  std::vector<BoundPredicate> predicates;
  /// Accuracy per referenced degradable column index.
  std::map<int, int> accuracy;
  /// Referenced degradable column indexes (projection + predicates).
  std::set<int> referenced_degradable;
};

/// One evaluated row: schema-ordered values at purpose accuracy, plus the
/// effective level of each degradable column (for display rendering).
struct EvaluatedRow {
  RowId row_id = kInvalidRowId;
  std::vector<Value> values;
  std::map<int, int> degradable_level;  // column -> rendered level
};

/// Binds table + WHERE conjuncts + projected columns against the catalog and
/// the session's active purpose.
Result<BoundQuery> BindQuery(Session* session, const std::string& table_name,
                             const std::vector<PredicateAst>& where,
                             const std::vector<int>& projected_columns);

/// Applies computability + f_k + σ_P to one stored row. Returns true and
/// fills `out` when the row qualifies under the bound accuracy levels.
bool EvaluateRow(const BoundQuery& query, const ReadOptions& read_options,
                 const RowView& view, EvaluatedRow* out);

/// Renders one output value (buckets as "[lo..hi]", levels applied).
std::string RenderValue(const Schema& schema, int col, const Value& value,
                        const std::map<int, int>& levels);

/// \brief Pull-based source of qualifying rows: the scan → σ stage of the
/// operator pipeline. Implementations stream either from the heap (batched
/// snapshots under the shared latch, bounded memory) or from a
/// multi-resolution index probe.
class RowSource {
 public:
  virtual ~RowSource() = default;
  /// Pulls the next qualifying row. Returns false at end of stream.
  virtual Result<bool> Next(EvaluatedRow* out) = 0;
};

/// Default heap-scan batch for streaming cursors: bounds both peak memory
/// and how long one batch holds the table's shared latch.
inline constexpr size_t kStreamingScanBatchRows = 256;

/// Chooses the access path (index probe when a usable degradable predicate
/// exists and the session allows indexes, heap scan otherwise) and returns
/// the corresponding source. `query` must outlive the source.
///
/// `scan_batch_rows` sets the heap-scan batch size. The streaming default
/// keeps memory bounded but releases the latch between batches (weak
/// cursor isolation: a row relocated by a concurrent update may be missed
/// or observed twice); the scan walks the table's partitions in order, one
/// partition latch at a time. Materializing callers (Execute, DELETE,
/// aggregates) pass SIZE_MAX: every partition is scanned atomically under
/// its shared latch (snapshot-per-partition semantics).
Result<std::unique_ptr<RowSource>> MakeRowSource(
    Session* session, const BoundQuery& query,
    size_t scan_batch_rows = kStreamingScanBatchRows);

/// Fully bound SELECT: access path + projection + aggregation shape.
struct SelectPlan {
  const Schema* schema = nullptr;
  std::vector<SelectItem> items;    // star already expanded
  std::vector<int> item_columns;    // per item: schema column (-1 = COUNT(*))
  std::vector<std::string> output_columns;  // rendered header names
  int group_col = -1;               // schema column, -1 = none
  bool has_aggregate = false;
  BoundQuery query;
};

/// Binds a SELECT statement into an executable plan.
Result<SelectPlan> BindSelect(Session* session, const SelectAst& ast);

}  // namespace plan
}  // namespace instantdb

#endif  // INSTANTDB_QUERY_PLAN_H_
