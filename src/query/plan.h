#ifndef INSTANTDB_QUERY_PLAN_H_
#define INSTANTDB_QUERY_PLAN_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "db/table.h"
#include "query/ast.h"
#include "query/levels.h"
#include "query/session.h"

/// \file
/// \brief Internal query-plan layer shared by the streaming Cursor and the
/// materializing executor: predicate binding, accuracy resolution, and the
/// batch-at-a-time row source (scan → σ at accuracy level) that both build
/// on — sequential or fanned out over the table's partitions per the
/// session's ScanOptions.
///
/// Nothing here is part of the stable public API; embedders should use
/// `Session` / `Cursor` (query/session.h, query/cursor.h).

namespace instantdb {
namespace plan {

/// A WHERE conjunct after binding: resolved column, effective accuracy
/// level, and (for degradable columns) the literal normalized to a
/// hierarchy node with its leaf interval.
struct BoundPredicate {
  int column = -1;
  bool degradable = false;
  int level = 0;  // accuracy k of this column under the active purpose
  ComparisonOp op = ComparisonOp::kEq;
  Value value;
  Value value2;

  // Degradable Eq/Like-as-label/Between: literal as hierarchy node.
  int literal_level = -1;
  LeafInterval literal_interval;
  LeafInterval literal_interval2;  // BETWEEN upper bound
  bool index_usable = false;

  // Unresolved LIKE: case-insensitive substring match flags.
  std::string like_core;
  bool like_prefix_wildcard = false;  // pattern starts with %
  bool like_suffix_wildcard = false;  // pattern ends with %
};

/// One bound table access: σ conjuncts plus the accuracy demanded of every
/// referenced degradable column.
struct BoundQuery {
  Table* table = nullptr;
  std::vector<BoundPredicate> predicates;
  /// Accuracy per referenced degradable column index.
  std::map<int, int> accuracy;
  /// Referenced degradable column indexes (projection + predicates).
  std::set<int> referenced_degradable;
};

/// One evaluated row: schema-ordered values at purpose accuracy, plus the
/// effective level of each degradable column (for display rendering).
/// Assignment reuses the vectors' capacity, which is what EvaluatedBatch's
/// slot recycling relies on.
struct EvaluatedRow {
  RowId row_id = kInvalidRowId;
  std::vector<Value> values;
  DegradableLevels degradable_level;  // column -> rendered level
};

/// One batch of qualifying rows, with slot storage reused across batches:
/// Clear() keeps every row's vectors allocated, so a steady-state scan
/// stops allocating after its first few batches (the read path's arena).
struct EvaluatedBatch {
  /// Valid rows are rows[0 .. size); entries beyond hold recycled storage.
  std::vector<EvaluatedRow> rows;
  size_t size = 0;

  void Clear() { size = 0; }
  /// Next writable slot (recycled or grown).
  EvaluatedRow* Add() {
    if (size == rows.size()) rows.emplace_back();
    return &rows[size++];
  }
  /// Drops the most recently added slot (row did not qualify).
  void DropLast() { --size; }
  void Swap(EvaluatedBatch* other) {
    rows.swap(other->rows);
    std::swap(size, other->size);
  }
};

/// Binds table + WHERE conjuncts + projected columns against the catalog and
/// the session's active purpose.
Result<BoundQuery> BindQuery(Session* session, const std::string& table_name,
                             const std::vector<PredicateAst>& where,
                             const std::vector<int>& projected_columns);

/// Applies computability + f_k + σ_P to one stored row. Returns true and
/// fills `out` when the row qualifies under the bound accuracy levels.
/// `stable_prefiltered` tells it the scan already evaluated every
/// stable-column conjunct below row assembly (ScanSpec pushdown), so only
/// the degradable terms are re-checked here.
bool EvaluateRow(const BoundQuery& query, const ReadOptions& read_options,
                 const RowView& view, EvaluatedRow* out,
                 bool stable_prefiltered = false);

/// Whole-batch σ: evaluates every view, appending the qualifying rows to
/// `out` (recycled slots, see EvaluatedBatch). This is the operators' inner
/// loop — one virtual call per batch instead of per row.
void EvaluateViews(const BoundQuery& query, const ReadOptions& read_options,
                   const std::vector<RowView>& views, EvaluatedBatch* out,
                   bool stable_prefiltered = false);

/// Renders one output value (buckets as "[lo..hi]", levels applied).
std::string RenderValue(const Schema& schema, int col, const Value& value,
                        const DegradableLevels& levels);

/// \brief Pull-based source of qualifying rows: the scan → σ stage of the
/// operator pipeline, pulled a batch at a time. Implementations stream from
/// the heap — sequentially or fanned out over the table's partitions by a
/// prefetch worker pool — or from a multi-resolution index probe.
class RowSource {
 public:
  virtual ~RowSource() = default;
  /// Pulls the next batch of qualifying rows into `*out` (storage reused or
  /// swapped). Returns false at end of stream. A returned batch may be
  /// empty only at end of stream.
  virtual Result<bool> NextBatch(EvaluatedBatch* out) = 0;
  /// Row-at-a-time adapter over NextBatch for consumers that fold rows into
  /// running state (aggregates, DELETE). Moves each row out of an internal
  /// batch; do not interleave with NextBatch on the same source.
  Result<bool> Next(EvaluatedRow* out);

 private:
  EvaluatedBatch adapter_batch_;
  size_t adapter_next_ = 0;
  bool adapter_done_ = false;
};

/// Default heap-scan batch for streaming cursors: bounds both peak memory
/// and how long one batch holds the table's shared latch.
inline constexpr size_t kStreamingScanBatchRows = 256;

/// Below this many live rows, auto-resolved parallelism (ScanOptions 0)
/// stays at 1: spawning scan workers costs more than scanning a
/// few-batches table inline.
inline constexpr uint64_t kParallelScanMinRows = 8 * kStreamingScanBatchRows;

/// Resolved scan fan-out: how many workers MakeRowSource would use for
/// `table` under the session's ScanOptions. 0 resolves to
/// DegradationOptions::worker_threads — but stays 1 on tables below
/// kParallelScanMinRows, where worker dispatch would dominate. Explicit
/// values are honored. No partition clamp: scans parallelize at morsel
/// (page-range) granularity, so the fan-out may exceed the partition count;
/// each scan path clamps only to its own morsel-plan size.
size_t ResolveScanParallelism(Session* session, const Table& table);

/// Chooses the access path (index probe when a usable degradable predicate
/// exists and the session allows indexes, heap scan otherwise) and returns
/// the corresponding source. `query` must outlive the source. ReadOptions
/// and ScanOptions are captured from the session at this point.
///
/// `scan_batch_rows` sets the heap-scan batch size. The streaming default
/// keeps memory bounded but releases the latch between batches (weak
/// cursor isolation: a row relocated by a concurrent update may be missed
/// or observed twice). With resolved parallelism 1 the scan walks the
/// table's partitions in order, one partition latch at a time; with more,
/// that many prefetch workers claim page-range morsels from a shared
/// work-stealing scheduler (util/morsel.h) and drain them into a bounded
/// batch queue (rows interleave across morsels in arrival order, still
/// snapshot-per-batch). The fan-out is clamped to the morsel-plan size, so
/// a one-morsel table skips the queue machinery entirely and stays on the
/// sequential source. Materializing callers (Execute, DELETE, aggregates)
/// pass SIZE_MAX: workers drain morsels a latched batch at a time and the
/// per-morsel results concatenate in (partition, page) order, so rows come
/// out in sequential-scan order at any parallelism.
Result<std::unique_ptr<RowSource>> MakeRowSource(
    Session* session, const BoundQuery& query,
    size_t scan_batch_rows = kStreamingScanBatchRows);

/// Fully bound SELECT: access path + projection + aggregation shape.
struct SelectPlan {
  const Schema* schema = nullptr;
  std::vector<SelectItem> items;    // star already expanded
  std::vector<int> item_columns;    // per item: schema column (-1 = COUNT(*))
  std::vector<std::string> output_columns;  // rendered header names
  int group_col = -1;               // schema column, -1 = none
  bool has_aggregate = false;
  BoundQuery query;
};

/// Binds a SELECT statement into an executable plan.
Result<SelectPlan> BindSelect(Session* session, const SelectAst& ast);

/// Merged per-worker aggregate state of one ungrouped aggregate query,
/// indexed like SelectPlan::items. COUNT(*) reads `count`; COUNT(col)/AVG
/// read `non_null`; SUM/AVG read `sums`; MIN/MAX read `mins`/`maxs`.
struct AggregatePartials {
  uint64_t count = 0;
  std::vector<double> sums;
  std::vector<Value> mins;
  std::vector<Value> maxs;
  std::vector<uint64_t> non_null;
};

/// True when `select` can compute below the cursor: pushdown enabled on the
/// session, ungrouped, every item an aggregate, and no usable index
/// predicate (index probes keep the row-at-a-time path).
bool CanPushAggregate(Session* session, const SelectPlan& select);

/// Aggregate pushdown: computes COUNT/SUM/AVG/MIN/MAX partials inside the
/// scan workers — one partial per WORKER, each claiming page-range morsels
/// from the shared work-stealing scheduler and folding them a latched
/// batch at a time with the stable predicates pushed below row assembly —
/// then merges the per-worker partials (merge is associative, so the claim
/// order never matters). Aggregate queries stop shipping qualifying rows
/// through a row source entirely; a query referencing no degradable column
/// (COUNT(*) over stable predicates) also skips every state-store probe.
/// Only valid when CanPushAggregate(session, select).
Result<AggregatePartials> ExecuteAggregatePushdown(Session* session,
                                                   const SelectPlan& select);

}  // namespace plan
}  // namespace instantdb

#endif  // INSTANTDB_QUERY_PLAN_H_
