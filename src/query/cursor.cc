#include "query/cursor.h"

#include "query/executor.h"
#include "query/plan.h"
#include "query/session.h"

namespace instantdb {

void CursorBatch::Reset(const plan::SelectPlan* plan) {
  plan_ = plan;
  size_ = 0;
}

size_t CursorBatch::Append(RowId row_id) {
  const size_t i = size_++;
  if (i == row_ids_.size()) {
    row_ids_.emplace_back();
    values_.emplace_back();
    levels_.emplace_back();
    display_.emplace_back();
    display_valid_.push_back(0);
  }
  row_ids_[i] = row_id;
  display_valid_[i] = 0;
  return i;
}

void CursorBatch::AdoptBuffered(
    std::vector<std::vector<Value>>&& rows,
    std::vector<std::vector<std::string>>&& display) {
  plan_ = nullptr;
  size_ = rows.size();
  row_ids_.assign(size_, kInvalidRowId);
  values_ = std::move(rows);
  levels_.clear();
  levels_.resize(size_);
  display_ = std::move(display);
  display_.resize(size_);  // pad DML results that carry no display strings
  display_valid_.assign(size_, 1);
}

const std::vector<std::string>& CursorBatch::display(size_t i) const {
  if (!display_valid_[i]) {
    // Lazy π rendering: only consumers that actually read display strings
    // pay for hierarchy lookups and formatting.
    std::vector<std::string>& out = display_[i];
    out.clear();
    const plan::SelectPlan& select = *plan_;
    out.reserve(select.item_columns.size());
    for (size_t k = 0; k < select.item_columns.size(); ++k) {
      out.push_back(plan::RenderValue(*select.schema, select.item_columns[k],
                                      values_[i][k], levels_[i]));
    }
    display_valid_[i] = 1;
  }
  return display_[i];
}

/// Pipeline state: either a live streaming pipeline (non-aggregate SELECT)
/// or a buffered result (aggregates, DML, purpose statements) served as one
/// pre-rendered batch.
struct Cursor::Impl {
  // Streaming: plan owns the bound query the source references, so it lives
  // behind a stable pointer and must be destroyed after the source.
  std::unique_ptr<plan::SelectPlan> plan;
  std::unique_ptr<plan::RowSource> source;
  /// Reused scan → σ output the batch projection reads from.
  plan::EvaluatedBatch evaluated;

  /// Current projected batch (reused storage); what Next/NextBatch expose.
  CursorBatch batch;
  size_t next_row = 0;   // Next()'s position within `batch`
  bool batch_live = false;

  /// Buffered fallback: the whole result is one pre-rendered batch.
  bool use_buffer = false;
  bool buffer_served = false;

  std::vector<std::string> columns;
  uint64_t rows_returned = 0;
  bool closed = false;
};

Cursor::Cursor(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Cursor::~Cursor() { Close(); }

const std::vector<std::string>& Cursor::columns() const {
  return impl_->columns;
}

uint64_t Cursor::rows_returned() const { return impl_->rows_returned; }

void Cursor::Close() {
  if (impl_ == nullptr || impl_->closed) return;
  impl_->closed = true;
  impl_->source.reset();  // joins any prefetch workers
  impl_->plan.reset();
  impl_->batch = CursorBatch{};
  impl_->batch_live = false;
}

Result<bool> Cursor::FetchBatch() {
  Impl& impl = *impl_;
  impl.batch_live = false;
  impl.next_row = 0;
  if (impl.closed) return false;

  if (impl.use_buffer) {
    if (impl.buffer_served) return false;
    impl.buffer_served = true;
    if (impl.batch.size() == 0) return false;
    impl.batch_live = true;
    return true;
  }

  impl.evaluated.Clear();
  IDB_ASSIGN_OR_RETURN(const bool more, impl.source->NextBatch(&impl.evaluated));
  if (!more) return false;

  // π over the whole batch into reused storage: copy the projected values,
  // carry the per-row levels for lazy display rendering.
  const plan::SelectPlan& select = *impl.plan;
  impl.batch.Reset(impl.plan.get());
  for (size_t r = 0; r < impl.evaluated.size; ++r) {
    const plan::EvaluatedRow& row = impl.evaluated.rows[r];
    const size_t i = impl.batch.Append(row.row_id);
    std::vector<Value>& out = impl.batch.values_[i];
    out.resize(select.item_columns.size());
    for (size_t k = 0; k < select.item_columns.size(); ++k) {
      out[k] = row.values[select.item_columns[k]];
    }
    impl.batch.levels_[i] = row.degradable_level;
  }
  impl.batch_live = impl.batch.size() > 0;
  return impl.batch_live;
}

Result<bool> Cursor::Next(CursorRow* out) {
  Impl& impl = *impl_;
  while (!impl.batch_live || impl.next_row >= impl.batch.size()) {
    IDB_ASSIGN_OR_RETURN(const bool more, FetchBatch());
    if (!more) return false;
  }
  out->batch_ = &impl.batch;
  out->index_ = impl.next_row++;
  ++impl.rows_returned;
  return true;
}

Result<bool> Cursor::NextBatch(CursorBatch** out) {
  IDB_ASSIGN_OR_RETURN(const bool more, FetchBatch());
  if (!more) return false;
  impl_->next_row = impl_->batch.size();  // Next() may not re-serve these
  impl_->rows_returned += impl_->batch.size();
  *out = &impl_->batch;
  return true;
}

Result<bool> Cursor::NextBatch(const CursorBatch** out) {
  CursorBatch* batch = nullptr;
  IDB_ASSIGN_OR_RETURN(const bool more, NextBatch(&batch));
  if (more) *out = batch;
  return more;
}

Result<std::unique_ptr<Cursor>> Cursor::Open(Session* session,
                                             const StatementAst& statement,
                                             size_t scan_batch_rows) {
  if (scan_batch_rows == 0) scan_batch_rows = plan::kStreamingScanBatchRows;
  auto impl = std::make_unique<Impl>();
  const auto* select_ast = std::get_if<SelectAst>(&statement);
  QueryResult buffered;
  if (select_ast != nullptr) {
    // Plan exactly once, whichever entry point the statement came through.
    auto plan = std::make_unique<plan::SelectPlan>();
    IDB_ASSIGN_OR_RETURN(*plan, plan::BindSelect(session, *select_ast));
    if (!plan->has_aggregate) {
      impl->columns = plan->output_columns;
      impl->plan = std::move(plan);
      IDB_ASSIGN_OR_RETURN(impl->source,
                           plan::MakeRowSource(session, impl->plan->query,
                                               scan_batch_rows));
      return std::unique_ptr<Cursor>(new Cursor(std::move(impl)));
    }
    // Aggregates execute eagerly over the bound plan; the cursor streams
    // the (small) aggregated result.
    IDB_ASSIGN_OR_RETURN(buffered, ExecuteAggregate(session, *plan));
  } else {
    // Non-SELECT statements execute eagerly; the cursor streams their
    // summary result.
    IDB_ASSIGN_OR_RETURN(buffered, ExecuteStatement(session, statement));
  }
  impl->use_buffer = true;
  impl->columns = buffered.columns;
  impl->batch.AdoptBuffered(std::move(buffered.rows),
                            std::move(buffered.display));
  return std::unique_ptr<Cursor>(new Cursor(std::move(impl)));
}

}  // namespace instantdb
