#include "query/cursor.h"

#include "query/executor.h"
#include "query/plan.h"
#include "query/session.h"

namespace instantdb {

/// Pipeline state: either a live streaming pipeline (non-aggregate SELECT)
/// or a buffered result (aggregates, DML, purpose statements).
struct Cursor::Impl {
  // Streaming: plan owns the bound query the source references, so it lives
  // behind a stable pointer and must be destroyed after the source.
  std::unique_ptr<plan::SelectPlan> plan;
  std::unique_ptr<plan::RowSource> source;

  // Buffered fallback.
  QueryResult buffered;
  size_t buffered_next = 0;
  bool use_buffer = false;

  std::vector<std::string> columns;
  uint64_t rows_returned = 0;
  bool closed = false;
};

Cursor::Cursor(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Cursor::~Cursor() { Close(); }

const std::vector<std::string>& Cursor::columns() const {
  return impl_->columns;
}

uint64_t Cursor::rows_returned() const { return impl_->rows_returned; }

void Cursor::Close() {
  if (impl_ == nullptr || impl_->closed) return;
  impl_->closed = true;
  impl_->source.reset();
  impl_->plan.reset();
  impl_->buffered = QueryResult{};
}

Result<bool> Cursor::Next(CursorRow* out) {
  Impl& impl = *impl_;
  if (impl.closed) return false;

  if (impl.use_buffer) {
    if (impl.buffered_next >= impl.buffered.rows.size()) return false;
    // The buffer is drained exactly once (buffered_next only advances), so
    // rows move out instead of copying.
    const size_t i = impl.buffered_next++;
    out->row_id = kInvalidRowId;
    out->values = std::move(impl.buffered.rows[i]);
    out->display = i < impl.buffered.display.size()
                       ? std::move(impl.buffered.display[i])
                       : std::vector<std::string>{};
    ++impl.rows_returned;
    return true;
  }

  plan::EvaluatedRow row;
  IDB_ASSIGN_OR_RETURN(const bool more, impl.source->Next(&row));
  if (!more) return false;

  // π: project + render the requested items.
  const plan::SelectPlan& select = *impl.plan;
  out->row_id = row.row_id;
  out->values.clear();
  out->display.clear();
  out->values.reserve(select.item_columns.size());
  out->display.reserve(select.item_columns.size());
  for (int col : select.item_columns) {
    out->values.push_back(row.values[col]);
    out->display.push_back(plan::RenderValue(*select.schema, col,
                                             row.values[col],
                                             row.degradable_level));
  }
  ++impl.rows_returned;
  return true;
}

Result<std::unique_ptr<Cursor>> Cursor::Open(Session* session,
                                             const StatementAst& statement,
                                             size_t scan_batch_rows) {
  if (scan_batch_rows == 0) scan_batch_rows = plan::kStreamingScanBatchRows;
  auto impl = std::make_unique<Impl>();
  const auto* select_ast = std::get_if<SelectAst>(&statement);
  if (select_ast != nullptr) {
    // Plan exactly once, whichever entry point the statement came through.
    auto plan = std::make_unique<plan::SelectPlan>();
    IDB_ASSIGN_OR_RETURN(*plan, plan::BindSelect(session, *select_ast));
    if (!plan->has_aggregate) {
      impl->columns = plan->output_columns;
      impl->plan = std::move(plan);
      IDB_ASSIGN_OR_RETURN(impl->source,
                           plan::MakeRowSource(session, impl->plan->query,
                                               scan_batch_rows));
      return std::unique_ptr<Cursor>(new Cursor(std::move(impl)));
    }
    // Aggregates execute eagerly over the bound plan; the cursor streams
    // the (small) aggregated result.
    IDB_ASSIGN_OR_RETURN(impl->buffered, ExecuteAggregate(session, *plan));
  } else {
    // Non-SELECT statements execute eagerly; the cursor streams their
    // summary result.
    IDB_ASSIGN_OR_RETURN(impl->buffered, ExecuteStatement(session, statement));
  }
  impl->use_buffer = true;
  impl->columns = impl->buffered.columns;
  return std::unique_ptr<Cursor>(new Cursor(std::move(impl)));
}

}  // namespace instantdb
