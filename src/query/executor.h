#ifndef INSTANTDB_QUERY_EXECUTOR_H_
#define INSTANTDB_QUERY_EXECUTOR_H_

#include "query/ast.h"
#include "query/plan.h"
#include "query/session.h"

namespace instantdb {

/// \brief Binds, plans and executes one parsed statement under the
/// session's active purpose, implementing the paper's accuracy-aware
/// operators:
///
///   σ_{P,k}(DS) = σ_P(f_k(∪_{j≤k} ST_j))    π_{*,k}(DS) = π(f_k(∪_{j≤k} ST_j))
///
/// Rows whose referenced degradable attributes are *coarser* than the
/// demanded level are not computable at k and are excluded (the paper's
/// strict, unambiguous semantics); ReadOptions::include_coarser switches to
/// the §IV relaxed semantics where predicates are also evaluated against
/// coarser stored values via hierarchy containment.
///
/// Planning: an equality / LIKE-on-label / BETWEEN predicate over a
/// degradable column is answered by the multi-resolution index when the
/// session allows indexes; everything else falls back to a heap scan.
Result<QueryResult> ExecuteStatement(Session* session,
                                     const StatementAst& statement);

/// Internal plumbing shared with the cursor layer: runs the aggregation /
/// GROUP BY pipeline over an already-bound SELECT plan (so each statement
/// is planned exactly once, whichever entry point it came through).
Result<QueryResult> ExecuteAggregate(Session* session,
                                     const plan::SelectPlan& select);

}  // namespace instantdb

#endif  // INSTANTDB_QUERY_EXECUTOR_H_
