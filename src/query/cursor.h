#ifndef INSTANTDB_QUERY_CURSOR_H_
#define INSTANTDB_QUERY_CURSOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "common/result.h"
#include "query/ast.h"
#include "query/levels.h"
#include "storage/page.h"

namespace instantdb {

class Session;
namespace plan {
struct SelectPlan;
}  // namespace plan

/// \brief One batch of projected output rows, owned by the Cursor and
/// served by `Cursor::NextBatch`. Valid until the next
/// NextBatch/Next/Close call; storage is reused across batches.
///
/// Values are materialized per batch (π over the scan → σ output); display
/// strings are NOT — `display(i)` renders row i's strings on first access
/// and caches them, so a consumer that only reads `values` never pays for
/// string formatting (the dominant per-row cost of the old row-at-a-time
/// pipeline).
class CursorBatch {
 public:
  size_t size() const { return size_; }
  RowId row_id(size_t i) const { return row_ids_[i]; }
  /// Projected values of row i, in SELECT-item order.
  const std::vector<Value>& values(size_t i) const { return values_[i]; }
  /// Display renderings of row i (bucket values render as "[lo..hi]"),
  /// produced lazily on first access.
  const std::vector<std::string>& display(size_t i) const;

  /// Moves row i's projected values out, leaving the slot empty. For
  /// single-pass materializing drains (each row taken once); streaming
  /// consumers should read `values(i)` instead — a taken slot costs a
  /// reallocation when the batch is recycled. If row i's display is also
  /// wanted, take (or read) it BEFORE the values: rendering reads them.
  std::vector<Value> TakeValues(size_t i) { return std::move(values_[i]); }
  /// Moves row i's display strings out, rendering them first if needed.
  std::vector<std::string> TakeDisplay(size_t i) {
    display(i);
    display_valid_[i] = 0;
    return std::move(display_[i]);
  }

 private:
  friend class Cursor;

  /// Clears rows, keeping per-row storage for reuse. `plan` provides the
  /// schema/items for lazy rendering (null for pre-rendered buffered
  /// results).
  void Reset(const plan::SelectPlan* plan);
  /// Appends one row slot and returns its index (storage recycled).
  size_t Append(RowId row_id);
  /// Adopts an eagerly-materialized result (aggregates, DML) as one
  /// pre-rendered batch: values and display strings move over verbatim,
  /// every display slot is marked rendered (no plan needed). The single
  /// place the parallel per-row vectors are assembled outside
  /// Reset/Append.
  void AdoptBuffered(std::vector<std::vector<Value>>&& rows,
                     std::vector<std::vector<std::string>>&& display);

  const plan::SelectPlan* plan_ = nullptr;
  std::vector<RowId> row_ids_;
  std::vector<std::vector<Value>> values_;
  std::vector<DegradableLevels> levels_;
  mutable std::vector<std::vector<std::string>> display_;
  mutable std::vector<uint8_t> display_valid_;
  size_t size_ = 0;
};

/// \brief One streamed output row: a view into the cursor's current batch,
/// filled by `Cursor::Next`. Valid until the next Next/NextBatch/Close call
/// on the cursor; copy out anything that must outlive the pull. Display
/// strings are rendered lazily on first `display()` access.
class CursorRow {
 public:
  RowId row_id() const { return batch_->row_id(index_); }
  /// Projected values in SELECT-item order.
  const std::vector<Value>& values() const { return batch_->values(index_); }
  /// Display renderings (rendered on first access, then cached in the
  /// batch).
  const std::vector<std::string>& display() const {
    return batch_->display(index_);
  }

 private:
  friend class Cursor;
  const CursorBatch* batch_ = nullptr;
  size_t index_ = 0;
};

/// \brief Pull-based result iterator: the scalable read path.
///
/// A cursor executes a SELECT as a batch-at-a-time operator pipeline
/// (scan → σ at the purpose's accuracy level → π), so a SELECT over
/// millions of rows never materializes more than a bounded window of scan
/// batches. Obtained from `Session::ExecuteCursor` or
/// `PreparedStatement::ExecuteCursor`:
///
/// \code
///   auto cursor = session.ExecuteCursor("SELECT user, location FROM pings");
///   CursorRow row;
///   while (true) {
///     auto more = (*cursor)->Next(&row);
///     if (!more.ok() || !*more) break;
///     Consume(row.values());           // row.display() renders on demand
///   }
/// \endcode
///
/// **Parallel fan-out.** The scan side runs at the session's
/// `ScanOptions::parallelism` (0 = match the database's worker pool,
/// clamped to the table's partition count). At parallelism 1 the consumer's
/// thread walks partitions in order — rows come out in (partition, heap)
/// order, no extra threads. At parallelism N ≥ 2, N prefetch workers drain
/// distinct partitions into a bounded batch queue while the consumer pulls:
/// scan I/O on one partition overlaps σ/π of another's batch, and rows
/// interleave across partitions in arrival order (no global order). Either
/// way `Next` is a view into the current batch and `NextBatch` exposes the
/// batches themselves — the bulk API the benches drain.
///
/// Isolation is snapshot-per-batch at every parallelism: each scan batch is
/// assembled under one partition's shared latch, rows inserted, deleted or
/// degraded while the cursor is open may or may not be observed (never
/// torn), and a row physically relocated by a concurrent update can be
/// missed or seen twice. Materialized reads through `Session::Execute` are
/// not subject to this — they drain each partition atomically (on the
/// worker pool, merged in partition order). Aggregate/GROUP BY statements
/// are supported but buffer their (small) aggregated result before
/// streaming it.
class Cursor {
 public:
  ~Cursor();
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;

  /// Output column names, available immediately after open.
  const std::vector<std::string>& columns() const;

  /// Pulls the next row into `*out` as a view into the current batch
  /// (valid until the next Next/NextBatch/Close). Returns true when a row
  /// was produced, false at end of stream. Calling Next after the end (or
  /// after Close) keeps returning false. Do not interleave with NextBatch.
  Result<bool> Next(CursorRow* out);

  /// Advances to the next batch of rows and points `*out` at it (valid
  /// until the next NextBatch/Next/Close). Returns false at end of stream.
  /// Batches are non-empty while the stream lasts.
  Result<bool> NextBatch(const CursorBatch** out);
  /// Mutable variant for consumers that move rows out of the batch
  /// (CursorBatch::TakeValues/TakeDisplay) — the materializing executor's
  /// drain, which would otherwise deep-copy the whole result.
  Result<bool> NextBatch(CursorBatch** out);

  /// Releases pipeline resources early (stopping any prefetch workers);
  /// Next/NextBatch return false afterwards. Also run by the destructor.
  void Close();

  /// Rows handed out so far (per row via Next, per batch via NextBatch).
  uint64_t rows_returned() const;

  /// Opens the pipeline for one parsed statement (SELECT streams; other
  /// statements execute eagerly and stream their result rows). Most callers
  /// use `Session::ExecuteCursor(sql)` instead.
  ///
  /// `scan_batch_rows` bounds how many rows one heap-scan batch assembles
  /// under a partition's shared latch. The streaming default (0) keeps
  /// memory bounded; `Session::Execute` drains with SIZE_MAX, which scans
  /// every partition atomically under its latch and keeps the pre-cursor
  /// executor's read consistency.
  static Result<std::unique_ptr<Cursor>> Open(Session* session,
                                              const StatementAst& statement,
                                              size_t scan_batch_rows = 0);

 private:
  struct Impl;
  explicit Cursor(std::unique_ptr<Impl> impl);

  /// Fetches the next non-empty batch into the impl's CursorBatch without
  /// touching rows_returned. Returns false at end of stream.
  Result<bool> FetchBatch();

  std::unique_ptr<Impl> impl_;
};

}  // namespace instantdb

#endif  // INSTANTDB_QUERY_CURSOR_H_
