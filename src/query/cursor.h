#ifndef INSTANTDB_QUERY_CURSOR_H_
#define INSTANTDB_QUERY_CURSOR_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "common/result.h"
#include "query/ast.h"
#include "storage/page.h"

namespace instantdb {

class Session;

/// One streamed output row: projected values at purpose accuracy plus their
/// display rendering (bucket values render as "[lo..hi]").
struct CursorRow {
  RowId row_id = kInvalidRowId;
  std::vector<Value> values;
  std::vector<std::string> display;
};

/// \brief Pull-based result iterator: the scalable read path.
///
/// A cursor executes a SELECT as an operator pipeline (scan → σ at the
/// purpose's accuracy level → π) and hands rows out one at a time, so a
/// SELECT over millions of rows never materializes more than one scan batch
/// (a few hundred rows) at once. Obtained from `Session::ExecuteCursor` or
/// `PreparedStatement::ExecuteCursor`:
///
/// \code
///   auto cursor = session.ExecuteCursor("SELECT user, location FROM pings");
///   CursorRow row;
///   while (true) {
///     auto more = (*cursor)->Next(&row);
///     if (!more.ok() || !*more) break;
///     Consume(row);
///   }
/// \endcode
///
/// Isolation is snapshot-per-batch: rows inserted, deleted or degraded
/// while the cursor is open may or may not be observed (never torn), and a
/// row physically relocated by a concurrent update can be missed or seen
/// twice. The scan spans the table's partitions in order — its resume
/// position is (partition, heap position) and each batch holds only one
/// partition's shared latch. Materialized reads through `Session::Execute`
/// are not subject to this — they drain each partition atomically.
/// Aggregate/GROUP BY statements are supported but buffer their (small)
/// aggregated result before streaming it.
class Cursor {
 public:
  ~Cursor();
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;

  /// Output column names, available immediately after open.
  const std::vector<std::string>& columns() const;

  /// Pulls the next row into `*out`. Returns true when a row was produced,
  /// false at end of stream. Calling Next after the end (or after Close)
  /// keeps returning false.
  Result<bool> Next(CursorRow* out);

  /// Releases pipeline resources early; Next returns false afterwards.
  /// Also run by the destructor.
  void Close();

  /// Rows handed out so far.
  uint64_t rows_returned() const;

  /// Opens the pipeline for one parsed statement (SELECT streams; other
  /// statements execute eagerly and stream their result rows). Most callers
  /// use `Session::ExecuteCursor(sql)` instead.
  ///
  /// `scan_batch_rows` bounds how many rows one heap-scan batch assembles
  /// under the table's shared latch. The streaming default (0) keeps memory
  /// bounded; `Session::Execute` drains with SIZE_MAX, which runs the whole
  /// scan under one latch and keeps the pre-cursor executor's
  /// single-snapshot read consistency.
  static Result<std::unique_ptr<Cursor>> Open(Session* session,
                                              const StatementAst& statement,
                                              size_t scan_batch_rows = 0);

 private:
  struct Impl;
  explicit Cursor(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace instantdb

#endif  // INSTANTDB_QUERY_CURSOR_H_
