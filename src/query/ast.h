#ifndef INSTANTDB_QUERY_AST_H_
#define INSTANTDB_QUERY_AST_H_

#include <string>
#include <variant>
#include <vector>

#include "catalog/value.h"

namespace instantdb {

enum class ComparisonOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,     // '%'-wildcards at either end only
  kBetween,  // inclusive
};

/// One conjunct of a WHERE clause: `column op literal` (the paper's example
/// queries are conjunctions of simple predicates). Literal positions may be
/// `?` parameter markers: `param`/`param2` then carry the 0-based ordinal of
/// the marker (in order of appearance across the statement) and the Value
/// holds NULL until a PreparedStatement binds it.
struct PredicateAst {
  std::string column;
  ComparisonOp op = ComparisonOp::kEq;
  Value value;
  Value value2;   // kBetween upper bound
  int param = -1;   // ? ordinal for value, -1 = literal
  int param2 = -1;  // ? ordinal for value2, -1 = literal
};

enum class AggregateKind : uint8_t { kNone, kCount, kSum, kAvg, kMin, kMax };

/// One SELECT-list item: a plain column or an aggregate. For COUNT(*),
/// `column` is empty.
struct SelectItem {
  AggregateKind aggregate = AggregateKind::kNone;
  std::string column;
};

struct SelectAst {
  bool star = false;
  std::vector<SelectItem> items;
  std::string table;
  std::vector<PredicateAst> where;
  std::string group_by;  // empty = none
};

struct InsertAst {
  std::string table;
  std::vector<Value> values;  // schema order; NULL placeholder at ? markers
  /// Aligned with `values`: ? ordinal of each position, -1 = literal.
  std::vector<int> params;
};

struct DeleteAst {
  std::string table;
  std::vector<PredicateAst> where;
};

/// `DECLARE PURPOSE <name> SET ACCURACY LEVEL <spec> FOR <table>.<column>
///  {, <spec> FOR <table>.<column>}` — the paper's purpose declaration that
/// binds each degradable attribute to the accuracy level serving that
/// purpose.
struct DeclarePurposeAst {
  struct Clause {
    std::string spec;  // level name / index / RANGE<width>
    std::string table;
    std::string column;
  };
  std::string name;
  std::vector<Clause> clauses;
};

/// `USE PURPOSE <name>` — re-activates a previously declared purpose.
struct UsePurposeAst {
  std::string name;
};

using StatementAst = std::variant<SelectAst, InsertAst, DeleteAst,
                                  DeclarePurposeAst, UsePurposeAst>;

/// Number of `?` parameter markers in the statement (0 when none). A
/// statement with markers can only run through a PreparedStatement, which
/// substitutes bound values before execution.
int CountParameters(const StatementAst& statement);

}  // namespace instantdb

#endif  // INSTANTDB_QUERY_AST_H_
