#ifndef INSTANTDB_QUERY_PARSER_H_
#define INSTANTDB_QUERY_PARSER_H_

#include <string>

#include "common/result.h"
#include "query/ast.h"

namespace instantdb {

/// \brief Recursive-descent parser for the InstantDB SQL subset:
///
///   DECLARE PURPOSE <name> SET ACCURACY LEVEL <spec> FOR <t>.<col>
///                                        {, <spec> FOR <t>.<col>}
///   USE PURPOSE <name>
///   SELECT * | item{,item} FROM <t> [WHERE pred {AND pred}]
///                          [GROUP BY <col>]
///     item  ::= <col> | COUNT(*) | COUNT|SUM|AVG|MIN|MAX(<col>)
///     pred  ::= <col> (=|<>|<|<=|>|>=) lit
///             | <col> LIKE 'pattern'        -- % at either end
///             | <col> BETWEEN lit AND lit
///     lit   ::= literal | ?                 -- ? = PreparedStatement param
///   INSERT INTO <t> VALUES (lit {, lit})
///   DELETE FROM <t> [WHERE pred {AND pred}]
///
/// This covers the paper's §II examples verbatim, e.g.:
///   DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION,
///                                     RANGE1000 FOR P.SALARY
///   SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%'
///                          AND SALARY = '2000-3000'
Result<StatementAst> ParseStatement(const std::string& sql);

}  // namespace instantdb

#endif  // INSTANTDB_QUERY_PARSER_H_
