#ifndef INSTANTDB_QUERY_LEXER_H_
#define INSTANTDB_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace instantdb {

enum class TokenType : uint8_t {
  kIdentifier,  // bare word (keywords are identifiers; parser matches them)
  kNumber,      // integer or decimal literal
  kString,      // '...'-quoted
  kSymbol,      // one of  = <> < <= > >= ( ) , . * ?
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // raw text (uppercased for identifiers? no: original)
  size_t position = 0;

  bool Is(TokenType t) const { return type == t; }
};

/// Splits a SQL statement into tokens. Identifiers keep their original
/// spelling; keyword matching is case-insensitive in the parser. String
/// literals support '' escaping.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace instantdb

#endif  // INSTANTDB_QUERY_LEXER_H_
