#ifndef INSTANTDB_QUERY_SESSION_H_
#define INSTANTDB_QUERY_SESSION_H_

#include <map>
#include <string>
#include <vector>

#include "common/options.h"
#include "db/database.h"
#include "query/ast.h"

namespace instantdb {

/// Case-insensitive table resolution; with `allow_prefix`, a name may be a
/// prefix of the real table name (the paper's `P.LOCATION` for PERSON).
const TableDef* ResolveTableName(const Catalog& catalog,
                                 const std::string& name, bool allow_prefix);
/// Case-insensitive column resolution; -1 when absent.
int ResolveColumnName(const Schema& schema, const std::string& name);

/// Tabular result of one SQL statement.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  /// Pre-rendered display strings (bucket values render as "[lo..hi]").
  std::vector<std::vector<std::string>> display;
  uint64_t affected_rows = 0;
  RowId last_insert_id = kInvalidRowId;

  /// ASCII table rendering for examples and the CLI-style demos.
  std::string ToString() const;
};

/// \brief SQL session: executes statements under a declared purpose.
///
/// The purpose mechanism is §II of the paper: "The accuracy level k is
/// chosen such that it reflects the declared purpose for querying the
/// data." A purpose binds each degradable attribute to one accuracy level;
/// queries then run unchanged SQL whose σ and π operators are evaluated at
/// those levels. Attributes without a binding default to level 0 (full
/// accuracy), which makes a session without purposes behave like a
/// traditional DBMS over the still-accurate subset of the data.
class Session {
 public:
  explicit Session(Database* db) : db_(db) {}

  /// Parses and executes one statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Programmatic equivalent of DECLARE PURPOSE (also activates it).
  Status DeclarePurpose(const std::string& name,
                        const std::vector<DeclarePurposeAst::Clause>& clauses);
  /// Re-activates a previously declared purpose.
  Status UsePurpose(const std::string& name);
  /// Deactivates any purpose: back to full-accuracy defaults.
  void ClearPurpose() { active_.clear(); }
  const std::string& active_purpose() const { return active_; }

  /// Accuracy level in effect for `column` of `table` (0 when unbound).
  int AccuracyFor(TableId table, int column) const;

  /// Session read options (include_coarser toggles the paper's §IV relaxed
  /// semantics); `use_indexes` lets benchmarks force full scans.
  ReadOptions& read_options() { return read_options_; }
  bool use_indexes() const { return use_indexes_; }
  void set_use_indexes(bool v) { use_indexes_ = v; }

  Database* db() const { return db_; }

 private:
  Database* const db_;
  /// purpose -> (table id, column idx) -> level.
  std::map<std::string, std::map<std::pair<TableId, int>, int>> purposes_;
  std::string active_;
  ReadOptions read_options_;
  bool use_indexes_ = true;
};

}  // namespace instantdb

#endif  // INSTANTDB_QUERY_SESSION_H_
