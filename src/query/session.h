#ifndef INSTANTDB_QUERY_SESSION_H_
#define INSTANTDB_QUERY_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/options.h"
#include "db/database.h"
#include "query/ast.h"

namespace instantdb {

class Cursor;
class PreparedStatement;

/// Case-insensitive table resolution; with `allow_prefix`, a name may be a
/// prefix of the real table name (the paper's `P.LOCATION` for PERSON).
const TableDef* ResolveTableName(const Catalog& catalog,
                                 const std::string& name, bool allow_prefix);
/// Case-insensitive column resolution; -1 when absent.
int ResolveColumnName(const Schema& schema, const std::string& name);

/// What kind of statement produced a QueryResult (drives ToString: tabular
/// rendering for SELECT, a summary line for DML and commands).
enum class StatementKind : uint8_t { kSelect, kInsert, kDelete, kCommand };

/// Tabular result of one SQL statement.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  /// Pre-rendered display strings (bucket values render as "[lo..hi]").
  std::vector<std::vector<std::string>> display;
  /// SELECT: number of result rows. INSERT/DELETE: rows written/removed.
  uint64_t affected_rows = 0;
  /// Row id assigned by the most recent INSERT (kInvalidRowId otherwise).
  RowId last_insert_id = kInvalidRowId;
  StatementKind statement = StatementKind::kSelect;

  /// ASCII table rendering for SELECT results; a one-line summary
  /// ("2 row(s) affected, last insert id 7") for DML and commands.
  std::string ToString() const;
};

/// \brief SQL session: executes statements under a declared purpose.
///
/// The purpose mechanism is §II of the paper: "The accuracy level k is
/// chosen such that it reflects the declared purpose for querying the
/// data." A purpose binds each degradable attribute to one accuracy level;
/// queries then run unchanged SQL whose σ and π operators are evaluated at
/// those levels. Attributes without a binding default to level 0 (full
/// accuracy), which makes a session without purposes behave like a
/// traditional DBMS over the still-accurate subset of the data.
class Session {
 public:
  explicit Session(Database* db) : db_(db) {}

  /// Parses and executes one statement, materializing the full result.
  /// Implemented as "open a cursor, drain it" — prefer ExecuteCursor for
  /// reads whose result may be large.
  Result<QueryResult> Execute(const std::string& sql);

  /// Scalable read entry point: parses one statement and opens a pull-based
  /// cursor over its result. Non-aggregate SELECTs stream row-at-a-time with
  /// bounded memory; aggregates and DML execute eagerly and stream the
  /// (small) materialized result.
  Result<std::unique_ptr<Cursor>> ExecuteCursor(const std::string& sql);

  /// Parses one statement (with optional `?` parameter markers) into a
  /// reusable handle: bind parameters, execute many times without
  /// re-parsing. See query/prepared_statement.h.
  Result<std::unique_ptr<PreparedStatement>> Prepare(const std::string& sql);

  /// Programmatic equivalent of DECLARE PURPOSE (also activates it).
  Status DeclarePurpose(const std::string& name,
                        const std::vector<DeclarePurposeAst::Clause>& clauses);
  /// Re-activates a previously declared purpose.
  Status UsePurpose(const std::string& name);
  /// Deactivates any purpose: back to full-accuracy defaults.
  void ClearPurpose() { active_.clear(); }
  const std::string& active_purpose() const { return active_; }

  /// Accuracy level in effect for `column` of `table` (0 when unbound).
  int AccuracyFor(TableId table, int column) const;

  /// Session read options (include_coarser toggles the paper's §IV relaxed
  /// semantics); `use_indexes` lets benchmarks force full scans.
  ReadOptions& read_options() { return read_options_; }
  bool use_indexes() const { return use_indexes_; }
  void set_use_indexes(bool v) { use_indexes_ = v; }

  /// Scan fan-out configuration for this session's SELECTs (parallelism 0 =
  /// match the database's worker pool). Options are captured when a cursor
  /// opens; changing them mid-cursor affects only later statements.
  ScanOptions& scan_options() { return scan_options_; }

  Database* db() const { return db_; }

 private:
  Database* const db_;
  /// purpose -> (table id, column idx) -> level.
  std::map<std::string, std::map<std::pair<TableId, int>, int>> purposes_;
  std::string active_;
  ReadOptions read_options_;
  ScanOptions scan_options_;
  bool use_indexes_ = true;
};

}  // namespace instantdb

#endif  // INSTANTDB_QUERY_SESSION_H_
