#include "query/predicate.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace instantdb {
namespace plan {

namespace {

bool ContainsIgnoreCase(const std::string& haystack,
                        const std::string& needle) {
  if (needle.empty()) return true;
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end(), [](char a, char b) {
                          return std::toupper(static_cast<unsigned char>(a)) ==
                                 std::toupper(static_cast<unsigned char>(b));
                        });
  return it != haystack.end();
}

}  // namespace

bool MatchLike(const std::string& text, const BoundPredicate& pred) {
  const std::string& core = pred.like_core;
  if (pred.like_prefix_wildcard && pred.like_suffix_wildcard) {
    return ContainsIgnoreCase(text, core);
  }
  if (pred.like_prefix_wildcard) {  // %core — suffix match
    return text.size() >= core.size() &&
           EqualsIgnoreCase(text.substr(text.size() - core.size()), core);
  }
  if (pred.like_suffix_wildcard) {  // core% — prefix match
    return text.size() >= core.size() &&
           EqualsIgnoreCase(text.substr(0, core.size()), core);
  }
  return EqualsIgnoreCase(text, core);
}

bool EvalStablePredicate(const BoundPredicate& pred, const Value& value) {
  if (value.is_null()) return false;
  switch (pred.op) {
    case ComparisonOp::kEq:
      return value == pred.value;
    case ComparisonOp::kNe:
      return !(value == pred.value);
    case ComparisonOp::kLt:
      return value.Compare(pred.value) < 0;
    case ComparisonOp::kLe:
      return value.Compare(pred.value) <= 0;
    case ComparisonOp::kGt:
      return value.Compare(pred.value) > 0;
    case ComparisonOp::kGe:
      return value.Compare(pred.value) >= 0;
    case ComparisonOp::kBetween:
      return value.Compare(pred.value) >= 0 && value.Compare(pred.value2) <= 0;
    case ComparisonOp::kLike:
      return value.type() == ValueType::kString && MatchLike(value.str(), pred);
  }
  return false;
}

ColumnPredicate::ColumnPredicate(const Schema& schema,
                                 const BoundPredicate* pred)
    : pred_(pred) {
  const auto& stable = schema.stable_columns();
  for (size_t i = 0; i < stable.size(); ++i) {
    if (stable[i] == pred->column) {
      stable_ordinal_ = static_cast<int>(i);
      break;
    }
  }
}

void ColumnPredicate::FilterBatch(const HeapTuple* tuples, size_t n,
                                  bool refine,
                                  std::vector<uint32_t>* sel) const {
  if (!refine) {
    for (size_t i = 0; i < n; ++i) {
      if (Matches(tuples[i])) sel->push_back(static_cast<uint32_t>(i));
    }
    return;
  }
  size_t kept = 0;
  for (uint32_t idx : *sel) {
    if (Matches(tuples[idx])) (*sel)[kept++] = idx;
  }
  sel->resize(kept);
}

StablePredicateFilter::StablePredicateFilter(
    const Schema& schema, const std::vector<BoundPredicate>& predicates) {
  for (const BoundPredicate& pred : predicates) {
    if (!pred.degradable) kernels_.emplace_back(schema, &pred);
  }
}

void StablePredicateFilter::SelectStable(const HeapTuple* tuples, size_t n,
                                         std::vector<uint32_t>* sel) const {
  if (kernels_.empty()) {
    sel->resize(n);
    for (size_t i = 0; i < n; ++i) (*sel)[i] = static_cast<uint32_t>(i);
    return;
  }
  kernels_[0].FilterBatch(tuples, n, /*refine=*/false, sel);
  for (size_t k = 1; k < kernels_.size() && !sel->empty(); ++k) {
    kernels_[k].FilterBatch(tuples, n, /*refine=*/true, sel);
  }
}

}  // namespace plan
}  // namespace instantdb
