#ifndef INSTANTDB_INSTANTDB_H_
#define INSTANTDB_INSTANTDB_H_

/// \file
/// \brief Umbrella header: the full public API of InstantDB, a DBMS that
/// enforces timely degradation of sensitive data (Anciaux et al., ICDE'08).
///
/// Core concepts:
///  - DomainHierarchy / GeneralizationTree / IntervalHierarchy — the
///    generalization trees of §II (Fig. 1).
///  - AttributeLcp / TupleLcp — Life Cycle Policies (Fig. 2 / Fig. 3).
///  - Schema / ColumnDef — stable vs. degradable attributes.
///  - Database — engine facade (storage, WAL, transactions, degrader).
///  - Session — SQL with DECLARE PURPOSE accuracy binding.
///  - Mondrian — k-anonymity comparison baseline.
///  - MaintenanceDaemon / AuditReport — self-driving checkpoint cadence and
///    deletion-assurance audits that *prove* data past its deadline is gone
///    (enable with DbOptions::maintenance.enabled; verify with
///    Database::Audit().Verify()).
///
/// Scalable read/write surfaces (designed for high-rate append streams and
/// bounded-memory consumers):
///  - WriteBatch + Database::Write — stage N inserts/deletes across tables,
///    commit atomically through one transaction and one WAL append/sync
///    (group commit); assigned row ids come back per staged insert.
///  - Session::ExecuteCursor → Cursor — pull-based row-at-a-time iterator
///    (scan → σ at accuracy level → π pipeline); a SELECT over millions of
///    rows never materializes more than one small scan batch.
///  - Session::Prepare → PreparedStatement — parse once, bind `?`
///    parameters, execute many; the hot path for ingest loops.
/// `Session::Execute` remains the convenience wrapper: it opens a cursor
/// and drains it into a fully materialized QueryResult.

#include "anonymize/mondrian.h"
#include "catalog/builtin_domains.h"
#include "catalog/catalog.h"
#include "catalog/generalization.h"
#include "catalog/lcp.h"
#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/clock.h"
#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "db/database.h"
#include "db/table.h"
#include "db/write_batch.h"
#include "degrade/degradation_engine.h"
#include "maintain/audit.h"
#include "maintain/maintenance_daemon.h"
#include "query/cursor.h"
#include "query/prepared_statement.h"
#include "query/session.h"
#include "service/service.h"

#endif  // INSTANTDB_INSTANTDB_H_
