#ifndef INSTANTDB_INSTANTDB_H_
#define INSTANTDB_INSTANTDB_H_

/// \file
/// \brief Umbrella header: the full public API of InstantDB, a DBMS that
/// enforces timely degradation of sensitive data (Anciaux et al., ICDE'08).
///
/// Core concepts:
///  - DomainHierarchy / GeneralizationTree / IntervalHierarchy — the
///    generalization trees of §II (Fig. 1).
///  - AttributeLcp / TupleLcp — Life Cycle Policies (Fig. 2 / Fig. 3).
///  - Schema / ColumnDef — stable vs. degradable attributes.
///  - Database — engine facade (storage, WAL, transactions, degrader).
///  - Session — SQL with DECLARE PURPOSE accuracy binding.
///  - Mondrian — k-anonymity comparison baseline.

#include "anonymize/mondrian.h"
#include "catalog/builtin_domains.h"
#include "catalog/catalog.h"
#include "catalog/generalization.h"
#include "catalog/lcp.h"
#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/clock.h"
#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "db/database.h"
#include "db/table.h"
#include "degrade/degradation_engine.h"
#include "query/session.h"

#endif  // INSTANTDB_INSTANTDB_H_
