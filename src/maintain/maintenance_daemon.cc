#include "maintain/maintenance_daemon.h"

#include <algorithm>

#include "common/logging.h"
#include "db/database.h"

namespace instantdb {

namespace {
/// Retry delays after a transient checkpoint I/O failure: start at the
/// floor, double per consecutive failure, never exceed the cap.
constexpr Micros kCheckpointBackoffFloor = 10'000;     // 10 ms
constexpr Micros kCheckpointBackoffCap = 5'000'000;    // 5 s
}  // namespace

MaintenanceDaemon::MaintenanceDaemon(Database* db,
                                     const MaintenanceOptions& options)
    : db_(db),
      options_(options),
      auditor_(db->wal(), db->options().degradation.worker_threads,
               db->worker_pool()) {}

MaintenanceDaemon::~MaintenanceDaemon() { Stop(); }

Status MaintenanceDaemon::Start() {
  if (running_.exchange(true)) return Status::OK();
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void MaintenanceDaemon::Stop() {
  if (!running_.exchange(false)) return;
  db_->clock()->WakeAll();
  if (thread_.joinable()) thread_.join();
}

void MaintenanceDaemon::Pause() {
  paused_.store(true, std::memory_order_release);
}

void MaintenanceDaemon::Resume() {
  paused_.store(false, std::memory_order_release);
  db_->clock()->WakeAll();
}

Status MaintenanceDaemon::RunOnce(Micros now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (paused_.load(std::memory_order_acquire)) {
    // Deadlines advance with no work: Resume picks up the NEXT cadence
    // point instead of replaying a backlog of missed ones.
    if (now >= next_checkpoint_due_) {
      next_checkpoint_due_ = now + options_.checkpoint_interval;
    }
    if (now >= next_audit_due_) next_audit_due_ = now + options_.audit_interval;
    return Status::OK();
  }
  Status status;
  if (options_.checkpoint_interval > 0 && now >= next_checkpoint_due_) {
    status = CheckpointIfWorthwhile(now);
    // Deadline AFTER the checkpoint: a successful checkpoint retires the
    // pressuring segment, so the adaptive pull only fires when a payload
    // deadline is still live inside the next interval. A transient I/O
    // failure instead schedules a capped exponential retry.
    next_checkpoint_due_ = CheckpointCadenceAfterLocked(now, status);
  }
  if (options_.audit_interval > 0 && now >= next_audit_due_) {
    next_audit_due_ = now + options_.audit_interval;
    const AuditReport report = RunAuditLocked(now);
    if (!report.clean()) {
      IDB_ERROR("maintenance audit found exposure: %s",
                report.ToString().c_str());
    }
  }
  return status;
}

Micros MaintenanceDaemon::NextCheckpointDueLocked(Micros now) {
  // Adaptive cadence: `checkpoint_interval` is the FLOOR — the guaranteed
  // worst-case gap between cadence points — but when a live WAL segment
  // holds a degradable payload whose phase-0 deadline lands inside that
  // window, the next cadence point is pulled forward to the deadline
  // itself. The checkpoint then rotates + retires the segment the moment
  // the payload becomes overdue instead of up to a full interval later,
  // shrinking the worst-case log exposure from `checkpoint_interval` to
  // one scheduler wake. A deadline already past (or kForever) leaves the
  // interval cadence untouched — pressure that old is caught by the
  // wal_pressure force in CheckpointIfWorthwhile at this very cadence
  // point.
  Micros due = now + options_.checkpoint_interval;
  const Micros payload = db_->wal()->EarliestPayloadDeadline();
  if (payload > now && payload < due) {
    due = payload;
    ++stats_.adaptive_checkpoint_pulls;
  }
  return due;
}

Status MaintenanceDaemon::CheckpointIfWorthwhile(Micros now) {
  const uint64_t dirty = db_->DirtyPartitions();
  // WAL payload-deadline pressure: a live segment still holds an accurate
  // insert payload past its phase-0 deadline. Checkpointing rotates and
  // retires it (scrub/unlink per the privacy mode) — this is what keeps
  // log hygiene tracking the degradation deadlines when no new writes
  // arrive to dirty a partition. A pending (failed-last-time) checkpoint
  // counts as pressure too: the failed attempt may have flushed every
  // partition clean while the manifest — and segment retirement — still
  // lag, so skipping on "clean" would strand the overdue checkpoint.
  const bool wal_pressure =
      db_->wal()->AuditExposure(now).exposed_segments > 0 ||
      checkpoint_pressure_pending_;
  if (dirty < options_.checkpoint_dirty_threshold && !wal_pressure) {
    ++stats_.checkpoints_skipped_clean;
    return Status::OK();
  }
  IDB_RETURN_IF_ERROR(db_->Checkpoint());
  ++stats_.checkpoints;
  if (wal_pressure && dirty < options_.checkpoint_dirty_threshold) {
    ++stats_.forced_checkpoints;
  }
  return Status::OK();
}

Micros MaintenanceDaemon::CheckpointCadenceAfterLocked(Micros now,
                                                       const Status& status) {
  if (status.ok()) {
    checkpoint_backoff_ = 0;
    checkpoint_pressure_pending_ = false;
    return NextCheckpointDueLocked(now);
  }
  if (first_error_.ok()) first_error_ = status;
  if (!status.IsIOError() && !status.IsBusy()) {
    // Non-transient failure: keep the regular cadence (the error is logged
    // by the caller and stays sticky in first_error_).
    return NextCheckpointDueLocked(now);
  }
  // Transient I/O failure: retry with capped exponential backoff, keeping
  // the pressure flag set so the attempt that finally succeeds bypasses the
  // skip-clean gate — a recovered disk immediately drives the overdue
  // checkpoint.
  checkpoint_pressure_pending_ = true;
  checkpoint_backoff_ =
      checkpoint_backoff_ == 0
          ? kCheckpointBackoffFloor
          : std::min(checkpoint_backoff_ * 2, kCheckpointBackoffCap);
  ++stats_.io_retries;
  return now + checkpoint_backoff_;
}

AuditReport MaintenanceDaemon::RunAuditLocked(Micros now) {
  const AuditReport report =
      db_->RunAuditSweep(auditor_, now, options_.audit_grace);
  ++stats_.audits;
  if (!report.clean()) {
    ++stats_.audits_failed;
    // Audit-driven repair: every partition the sweep proved overdue becomes
    // a top-priority degradation unit — the engine's next pass (woken now)
    // drains it ahead of the regular deadline order, closing the attack
    // window the audit just measured instead of merely reporting it.
    for (const TableAuditFindings& findings : report.tables) {
      for (const uint32_t partition : findings.exposed_partitions) {
        db_->degradation()->EnqueueUrgent(findings.table, partition);
        ++stats_.repairs_enqueued;
      }
    }
  }
  stats_.audit_rows_scanned += report.rows_scanned;
  stats_.max_exposure_seen =
      std::max(stats_.max_exposure_seen, report.max_exposure);
  stats_.last_audit = now;
  last_report_ = report;
  return report;
}

AuditReport MaintenanceDaemon::RunAuditNow() {
  std::lock_guard<std::mutex> lock(mu_);
  return RunAuditLocked(db_->clock()->NowMicros());
}

void MaintenanceDaemon::Loop() {
  for (;;) {
    // Token before the running_ check: a Stop() (or Resume()) landing
    // anywhere after this line expires the token, so the WaitUntil below
    // returns immediately instead of sleeping through the shutdown wake.
    const uint64_t token = db_->clock()->WakeToken();
    if (!running_.load(std::memory_order_acquire)) break;
    const Micros now = db_->clock()->NowMicros();
    const Status status = RunOnce(now);
    if (!status.ok()) {
      IDB_ERROR("maintenance step failed: %s", status.ToString().c_str());
    }
    Micros wake = kForever;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (options_.checkpoint_interval > 0) {
        wake = std::min(wake, next_checkpoint_due_);
      }
      if (options_.audit_interval > 0) wake = std::min(wake, next_audit_due_);
    }
    db_->clock()->WaitUntil(wake == kForever ? now + kMicrosPerHour : wake,
                            token);
  }
}

MaintenanceDaemon::Stats MaintenanceDaemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

AuditReport MaintenanceDaemon::last_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_report_;
}

}  // namespace instantdb
