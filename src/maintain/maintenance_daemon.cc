#include "maintain/maintenance_daemon.h"

#include <algorithm>

#include "common/logging.h"
#include "db/database.h"

namespace instantdb {

MaintenanceDaemon::MaintenanceDaemon(Database* db,
                                     const MaintenanceOptions& options)
    : db_(db),
      options_(options),
      auditor_(db->wal(), db->options().degradation.worker_threads) {}

MaintenanceDaemon::~MaintenanceDaemon() { Stop(); }

Status MaintenanceDaemon::Start() {
  if (running_.exchange(true)) return Status::OK();
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void MaintenanceDaemon::Stop() {
  if (!running_.exchange(false)) return;
  db_->clock()->WakeAll();
  if (thread_.joinable()) thread_.join();
}

void MaintenanceDaemon::Pause() {
  paused_.store(true, std::memory_order_release);
}

void MaintenanceDaemon::Resume() {
  paused_.store(false, std::memory_order_release);
  db_->clock()->WakeAll();
}

Status MaintenanceDaemon::RunOnce(Micros now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (paused_.load(std::memory_order_acquire)) {
    // Deadlines advance with no work: Resume picks up the NEXT cadence
    // point instead of replaying a backlog of missed ones.
    if (now >= next_checkpoint_due_) {
      next_checkpoint_due_ = now + options_.checkpoint_interval;
    }
    if (now >= next_audit_due_) next_audit_due_ = now + options_.audit_interval;
    return Status::OK();
  }
  Status status;
  if (options_.checkpoint_interval > 0 && now >= next_checkpoint_due_) {
    next_checkpoint_due_ = now + options_.checkpoint_interval;
    status = CheckpointIfWorthwhile(now);
  }
  if (options_.audit_interval > 0 && now >= next_audit_due_) {
    next_audit_due_ = now + options_.audit_interval;
    const AuditReport report = RunAuditLocked(now);
    if (!report.clean()) {
      IDB_ERROR("maintenance audit found exposure: %s",
                report.ToString().c_str());
    }
  }
  return status;
}

Status MaintenanceDaemon::CheckpointIfWorthwhile(Micros now) {
  const uint64_t dirty = db_->DirtyPartitions();
  // WAL payload-deadline pressure: a live segment still holds an accurate
  // insert payload past its phase-0 deadline. Checkpointing rotates and
  // retires it (scrub/unlink per the privacy mode) — this is what keeps
  // log hygiene tracking the degradation deadlines when no new writes
  // arrive to dirty a partition.
  const bool wal_pressure =
      db_->wal()->AuditExposure(now).exposed_segments > 0;
  if (dirty < options_.checkpoint_dirty_threshold && !wal_pressure) {
    ++stats_.checkpoints_skipped_clean;
    return Status::OK();
  }
  IDB_RETURN_IF_ERROR(db_->Checkpoint());
  ++stats_.checkpoints;
  if (wal_pressure && dirty < options_.checkpoint_dirty_threshold) {
    ++stats_.forced_checkpoints;
  }
  return Status::OK();
}

AuditReport MaintenanceDaemon::RunAuditLocked(Micros now) {
  const AuditReport report =
      db_->RunAuditSweep(auditor_, now, options_.audit_grace);
  ++stats_.audits;
  if (!report.clean()) ++stats_.audits_failed;
  stats_.audit_rows_scanned += report.rows_scanned;
  stats_.max_exposure_seen =
      std::max(stats_.max_exposure_seen, report.max_exposure);
  stats_.last_audit = now;
  last_report_ = report;
  return report;
}

AuditReport MaintenanceDaemon::RunAuditNow() {
  std::lock_guard<std::mutex> lock(mu_);
  return RunAuditLocked(db_->clock()->NowMicros());
}

void MaintenanceDaemon::Loop() {
  for (;;) {
    // Token before the running_ check: a Stop() (or Resume()) landing
    // anywhere after this line expires the token, so the WaitUntil below
    // returns immediately instead of sleeping through the shutdown wake.
    const uint64_t token = db_->clock()->WakeToken();
    if (!running_.load(std::memory_order_acquire)) break;
    const Micros now = db_->clock()->NowMicros();
    const Status status = RunOnce(now);
    if (!status.ok()) {
      IDB_ERROR("maintenance step failed: %s", status.ToString().c_str());
    }
    Micros wake = kForever;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (options_.checkpoint_interval > 0) {
        wake = std::min(wake, next_checkpoint_due_);
      }
      if (options_.audit_interval > 0) wake = std::min(wake, next_audit_due_);
    }
    db_->clock()->WaitUntil(wake == kForever ? now + kMicrosPerHour : wake,
                            token);
  }
}

MaintenanceDaemon::Stats MaintenanceDaemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

AuditReport MaintenanceDaemon::last_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_report_;
}

}  // namespace instantdb
