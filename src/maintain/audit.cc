#include "maintain/audit.h"

#include <algorithm>
#include <mutex>

#include "common/strings.h"
#include "util/morsel.h"
#include "util/parallel.h"

namespace instantdb {

Status AuditReport::Verify() const {
  if (clean()) return Status::OK();
  return Status::Corruption("deletion-assurance audit failed: " + ToString());
}

std::string AuditReport::ToString() const {
  return StringPrintf(
      "audit@%lld(grace=%lld): rows=%llu exposed_values=%llu "
      "stale_index=%llu missing_index=%llu overdue_tuples=%llu "
      "exposed_wal_segments=%llu unscrubbed_recycled=%llu "
      "lingering_epoch_keys=%llu max_exposure=%lld",
      static_cast<long long>(at), static_cast<long long>(grace),
      static_cast<unsigned long long>(rows_scanned),
      static_cast<unsigned long long>(exposed_values),
      static_cast<unsigned long long>(stale_index_entries),
      static_cast<unsigned long long>(missing_index_entries),
      static_cast<unsigned long long>(overdue_tuples),
      static_cast<unsigned long long>(exposed_wal_segments),
      static_cast<unsigned long long>(unscrubbed_recycled_segments),
      static_cast<unsigned long long>(lingering_epoch_keys),
      static_cast<long long>(max_exposure));
}

namespace {

/// Per-partition accumulator. Sweep workers fold one private copy per
/// claimed morsel, then merge it in under a mutex — the hot row loop never
/// shares a cache line across workers even when a skewed partition's
/// morsels are being swept by several of them.
struct PartitionFindings {
  uint64_t rows = 0;
  uint64_t exposed = 0;
  uint64_t overdue_tuples = 0;
  uint64_t stale_index = 0;
  uint64_t missing_index = 0;
  Micros max_exposure = 0;
};

}  // namespace

AuditReport DeletionAuditor::Run(const std::vector<Table*>& tables, Micros now,
                                 Micros grace) const {
  AuditReport report;
  report.at = now;
  report.grace = grace;
  const Micros horizon = grace >= now ? 0 : now - grace;

  for (Table* table : tables) {
    TableAuditFindings findings;
    findings.table = table->id();
    findings.name = table->def().name;
    const Schema& schema = table->schema();
    const auto& degradable = schema.degradable_columns();

    const uint32_t parts = table->num_partitions();
    std::vector<PartitionFindings> per(parts);
    std::mutex merge_mu;
    // Page-range morsels with a null stats sink: audit claims are not query
    // scans and must not perturb the scan-counter invariant. Read-only
    // fan-out; cursor batches hold one shared latch at a time, so the audit
    // never blocks a writer or the degrader for longer than one batch
    // assembly. Scan errors surface as a Status and abort the whole sweep.
    MorselScheduler sched(table->MorselPlan(0));
    const size_t workers =
        std::max<size_t>(1, std::min<size_t>(workers_, sched.total()));
    auto sweep = [&](size_t w) -> Status {
      Morsel morsel;
      std::vector<RowView> batch;
      while (sched.Claim(w, &morsel)) {
        PartitionFindings acc;
        PartitionCursor cursor = table->OpenMorselCursor(morsel);
        bool done = false;
        while (!done) {
          batch.clear();
          IDB_RETURN_IF_ERROR(cursor.NextBatch(1024, &batch, &done));
          for (const RowView& row : batch) {
            ++acc.rows;
            size_t removed = 0;
            for (size_t d = 0; d < degradable.size(); ++d) {
              const AttributeLcp& lcp = schema.column(degradable[d]).lcp;
              const int stored = row.phases[d];
              if (stored >= lcp.num_phases()) {
                ++removed;
                continue;
              }
              // Phase the LCP expects at the horizon; anything stored
              // more accurately has outlived a transition deadline.
              const int expected = lcp.PhaseAt(horizon - row.insert_time);
              if (stored < expected) {
                ++acc.exposed;
                // The value should have left `stored` at this deadline;
                // the attack window is how long past it we caught it.
                const Micros deadline =
                    row.insert_time + lcp.PhaseEndOffset(stored);
                acc.max_exposure = std::max(acc.max_exposure, now - deadline);
              }
            }
            // Every value at ⊥ but the shell still in the heap: the
            // disappearance step is overdue (counted per tuple, not per
            // value, so it never double-counts with exposed_values).
            if (!degradable.empty() && removed == degradable.size()) {
              ++acc.overdue_tuples;
            }
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        PartitionFindings& dst = per[morsel.partition];
        dst.rows += acc.rows;
        dst.exposed += acc.exposed;
        dst.overdue_tuples += acc.overdue_tuples;
        dst.max_exposure = std::max(dst.max_exposure, acc.max_exposure);
      }
      return Status::OK();
    };
    Status swept = pool_ != nullptr ? pool_->Run(workers, workers, sweep)
                                    : ParallelFor(workers, workers, sweep);
    if (swept.ok()) {
      // Index reconciliation stays partition-grained: AuditIndexes is one
      // shared-latch acquisition over the whole partition by design.
      auto audit_indexes = [&](size_t p) -> Status {
        const TablePartition::IndexAuditCounts index_counts =
            table->partition(static_cast<uint32_t>(p))->AuditIndexes();
        per[p].stale_index = index_counts.stale;
        per[p].missing_index = index_counts.missing;
        return Status::OK();
      };
      swept = pool_ != nullptr ? pool_->Run(workers_, parts, audit_indexes)
                               : ParallelFor(workers_, parts, audit_indexes);
    }
    if (!swept.ok()) {
      // A partition that cannot even be read counts as exposed: the audit
      // must fail loudly, never vouch for bytes it could not check.
      ++findings.exposed_values;
      findings.name += " (sweep failed: " + swept.ToString() + ")";
    }
    for (uint32_t p = 0; p < parts; ++p) {
      const PartitionFindings& acc = per[p];
      findings.rows_scanned += acc.rows;
      findings.exposed_values += acc.exposed;
      findings.overdue_tuples += acc.overdue_tuples;
      findings.stale_index_entries += acc.stale_index;
      findings.missing_index_entries += acc.missing_index;
      findings.max_exposure = std::max(findings.max_exposure, acc.max_exposure);
      if (acc.exposed != 0 || acc.overdue_tuples != 0 || acc.stale_index != 0) {
        findings.exposed_partitions.push_back(p);
      }
    }
    if (wal_ != nullptr && wal_->epoch_keys_enabled()) {
      // Keys for epochs whose inserts all left phase 0 must be destroyed;
      // grace gives the destroyer the same slack the value sweep grants.
      const Micros safe = table->SafeEpochTime();
      findings.lingering_epoch_keys =
          wal_->LingeringEpochKeys(table->id(), grace >= safe ? 0 : safe - grace);
    }

    report.rows_scanned += findings.rows_scanned;
    report.exposed_values += findings.exposed_values;
    report.stale_index_entries += findings.stale_index_entries;
    report.missing_index_entries += findings.missing_index_entries;
    report.overdue_tuples += findings.overdue_tuples;
    report.lingering_epoch_keys += findings.lingering_epoch_keys;
    report.max_exposure = std::max(report.max_exposure, findings.max_exposure);
    report.tables.push_back(std::move(findings));
  }

  if (wal_ != nullptr) {
    const WalManager::ExposureAudit wal_audit = wal_->AuditExposure(horizon);
    report.exposed_wal_segments = wal_audit.exposed_segments;
    report.unscrubbed_recycled_segments = wal_audit.unscrubbed_recycled;
  }
  return report;
}

}  // namespace instantdb
