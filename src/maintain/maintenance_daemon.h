#ifndef INSTANTDB_MAINTAIN_MAINTENANCE_DAEMON_H_
#define INSTANTDB_MAINTAIN_MAINTENANCE_DAEMON_H_

#include <atomic>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "common/options.h"
#include "common/status.h"
#include "maintain/audit.h"

namespace instantdb {

class Database;

/// \brief The self-driving maintenance daemon: one scheduler thread that
/// makes the durability/privacy loop autonomous — and auditable — instead
/// of caller-driven (ROADMAP item 5).
///
/// Three cooperating services under one MaintenanceOptions-configured
/// cadence:
///
///  1. *Background checkpoint cadence.* Every `checkpoint_interval` the
///     daemon polls the per-partition dirty bits (TablePartition::dirty —
///     two atomic loads per partition, no latches) and runs the existing
///     incremental Database::Checkpoint when at least
///     `checkpoint_dirty_threshold` partitions are dirty. A cadence point is
///     also FORCED — dirty or not — when a live WAL segment still holds an
///     accurate insert payload past its phase-0 deadline
///     (WalManager::AuditExposure): segment retirement, and with it the
///     kScrub/kEncryptedEpoch privacy cadence, must track degradation
///     deadlines even when no new writes arrive to dirty a partition.
///     The cadence is ADAPTIVE: `checkpoint_interval` is the floor (the
///     guaranteed worst-case gap), but when the earliest phase-0 deadline
///     of any live WAL payload (WalManager::EarliestPayloadDeadline) lands
///     inside the interval, the next cadence point is pulled forward to
///     that deadline — the segment retires the moment its payload turns
///     overdue, not up to an interval later.
///  2. *Continuous deletion-assurance audits.* Every `audit_interval` (0 =
///     on demand only) a DeletionAuditor sweep proves every value past its
///     deadline is degraded or destroyed across stores, indexes, WAL
///     segments and epoch keys. Findings land in stats() /
///     Database::stats().maintenance; a failed audit is counted and logged,
///     and the full hard-fail report is available via RunAuditNow().
///  3. *Policy hooks.* Pause()/Resume() gate both services (cadence points
///     pass with no work while paused); RunOnce(now) drives the whole
///     scheduler deterministically on a VirtualClock — it is the exact
///     function the background thread loops on, so tests exercise the real
///     cadence logic, not a test-only twin.
///
/// Lifecycle: the Database constructs one unconditionally (so pumped tests
/// can RunOnce without a thread) and Start()s it only when
/// MaintenanceOptions::enabled. Database::Close stops the daemon FIRST —
/// before the degrader — so no new checkpoint or audit can start while the
/// engine drains (the shutdown-order contract asserted in Close).
class MaintenanceDaemon {
 public:
  struct Stats {
    /// Cadence checkpoints that ran (dirty threshold met or forced).
    uint64_t checkpoints = 0;
    /// Cadence points skipped because too few partitions were dirty.
    uint64_t checkpoints_skipped_clean = 0;
    /// Checkpoints forced below the dirty threshold by WAL payload-deadline
    /// pressure (a live segment held an overdue accurate value).
    uint64_t forced_checkpoints = 0;
    /// Cadence points pulled EARLIER than checkpoint_interval because a
    /// live WAL payload's phase-0 deadline landed inside the window
    /// (adaptive cadence; the interval stays the guaranteed floor).
    uint64_t adaptive_checkpoint_pulls = 0;
    /// Overdue (table, partition) repair units handed to the degradation
    /// engine at top priority after a failed audit.
    uint64_t repairs_enqueued = 0;
    uint64_t audits = 0;
    uint64_t audits_failed = 0;
    uint64_t audit_rows_scanned = 0;
    /// Worst attack window any audit has seen (monotone high-water mark).
    Micros max_exposure_seen = 0;
    /// Clock instant of the most recent completed audit (0 = none yet).
    Micros last_audit = 0;
    /// Transient checkpoint I/O failures absorbed by capped exponential
    /// backoff (the cadence retries instead of crashing or spinning).
    uint64_t io_retries = 0;
  };

  MaintenanceDaemon(Database* db, const MaintenanceOptions& options);
  ~MaintenanceDaemon();
  MaintenanceDaemon(const MaintenanceDaemon&) = delete;
  MaintenanceDaemon& operator=(const MaintenanceDaemon&) = delete;

  /// Spawns the scheduler thread (idempotent).
  Status Start();
  /// Stops and joins the scheduler thread; RunOnce keeps working after.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Policy hooks: while paused, cadence points pass without checkpointing
  /// or auditing (deadlines still advance, so Resume doesn't replay a
  /// backlog of missed cadence points).
  void Pause();
  void Resume();
  bool paused() const { return paused_.load(std::memory_order_acquire); }

  /// One deterministic scheduler step at clock time `now`: runs whichever
  /// services' cadence deadlines have passed and advances them. This is
  /// the body of the background loop; tests on a VirtualClock call it
  /// directly after Advance().
  Status RunOnce(Micros now);

  /// Unconditional deletion-assurance sweep at the clock's current time,
  /// cadence-independent. The returned report's Verify() is the hard-fail
  /// API the acceptance tests assert on.
  AuditReport RunAuditNow();

  Stats stats() const;
  /// Most recent completed audit report (default-constructed before any).
  AuditReport last_report() const;

  /// First error any cadence checkpoint hit (OK before any). Sticky:
  /// Database::Close surfaces it even after later retries succeeded, so a
  /// disk that failed and recovered mid-run is never silently forgotten.
  Status first_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
  }

  /// Next checkpoint cadence deadline as RunOnce would compute it at `now`
  /// (exposed for cadence tests; the daemon recomputes at each firing).
  Micros next_checkpoint_due() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_checkpoint_due_;
  }

 private:
  void Loop();
  /// Adaptive cadence: interval-floored, pulled earlier to the earliest
  /// live WAL payload deadline when that lands inside the window.
  Micros NextCheckpointDueLocked(Micros now);
  /// Cadence checkpoint decision + execution (see class comment, service 1).
  Status CheckpointIfWorthwhile(Micros now);
  /// Folds a cadence-checkpoint result into the retry/backoff state and
  /// returns the next cadence deadline: transient I/O failures (IOError,
  /// Busy) schedule a capped exponential retry and mark the deadline
  /// pressure unmet, so a recovered disk immediately drives the overdue
  /// checkpoint; success resets the backoff.
  Micros CheckpointCadenceAfterLocked(Micros now, const Status& status);
  AuditReport RunAuditLocked(Micros now);

  Database* const db_;
  const MaintenanceOptions options_;
  DeletionAuditor auditor_;

  std::atomic<bool> running_{false};
  std::atomic<bool> paused_{false};
  std::thread thread_;

  /// Guards the cadence deadlines, stats and last report. RunOnce holds it
  /// across a whole step, which also serializes a pumped RunOnce against
  /// the background thread if both are (mis)used at once.
  mutable std::mutex mu_;
  Micros next_checkpoint_due_ = 0;
  Micros next_audit_due_ = 0;
  /// Current retry delay after a transient checkpoint I/O failure; 0 when
  /// healthy. Doubles per consecutive failure up to the cap.
  Micros checkpoint_backoff_ = 0;
  /// A cadence checkpoint was due (dirty threshold or WAL pressure) but
  /// failed: the next attempt bypasses the skip-clean gate, because a
  /// partial flush may have left every partition clean while the manifest —
  /// and segment retirement — still lag.
  bool checkpoint_pressure_pending_ = false;
  Status first_error_;
  Stats stats_;
  AuditReport last_report_;
};

}  // namespace instantdb

#endif  // INSTANTDB_MAINTAIN_MAINTENANCE_DAEMON_H_
