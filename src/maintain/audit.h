#ifndef INSTANTDB_MAINTAIN_AUDIT_H_
#define INSTANTDB_MAINTAIN_AUDIT_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "db/table.h"
#include "util/worker_pool.h"
#include "wal/wal_manager.h"

namespace instantdb {

/// Per-table slice of an AuditReport (the table-level attack-window view
/// surfaced through Database::stats().maintenance and the benches).
struct TableAuditFindings {
  TableId table = 0;
  std::string name;
  uint64_t rows_scanned = 0;
  /// Degradable values stored MORE accurately than their LCP allows at the
  /// audit horizon — the paper's exposure, counted value-by-value.
  uint64_t exposed_values = 0;
  /// Index postings claiming accuracy the data has lost / postings the
  /// index is missing (per-partition single-latch reconciliation).
  uint64_t stale_index_entries = 0;
  uint64_t missing_index_entries = 0;
  /// Tuples whose every degradable value reached ⊥ yet whose shell still
  /// occupies the heap (the LCP's disappearance step did not run).
  uint64_t overdue_tuples = 0;
  /// kEncryptedEpoch: live epoch keys the destroyer should have killed.
  uint64_t lingering_epoch_keys = 0;
  /// Worst attack window found: how long the most overdue value has been
  /// held past its transition deadline (0 when nothing is exposed).
  Micros max_exposure = 0;
  /// Partitions where in-store exposure was found (exposed values, overdue
  /// tuple shells, or stale index postings) — the repair units a failed
  /// audit hands to DegradationEngine::EnqueueUrgent. WAL/epoch-key
  /// findings are not partition work and never appear here.
  std::vector<uint32_t> exposed_partitions;
};

/// \brief Result of one deletion-assurance sweep: the *proof side* of timely
/// degradation (paper §V; ROADMAP item 5). Degradation executing is not the
/// deliverable — degradation being VERIFIABLY complete is. Every counter here
/// is a place accurate data could outlive its deadline:
///
///  - `exposed_values`:  live store/heap values more accurate than the LCP
///    permits at `at - grace`.
///  - `stale_index_entries`: multi-resolution index postings at accuracy
///    levels the underlying data has already left (an attacker with index
///    access learns what the store no longer holds).
///  - `overdue_tuples`: fully-degraded tuple shells that should have
///    disappeared.
///  - `exposed_wal_segments`: live WAL segments that may still hold an
///    accurate insert payload past its phase-0 deadline (kPlain/kScrub).
///  - `unscrubbed_recycled_segments`: segments retired by rename and left
///    on disk (kPlain — the unsafe baseline, permanently flagged).
///  - `lingering_epoch_keys`: undestroyed keys for epochs whose tuples all
///    left phase 0 (kEncryptedEpoch).
///
/// `clean()` is the subsystem's acceptance criterion; `Verify()` is the
/// hard-fail form for tests and operators.
struct AuditReport {
  Micros at = 0;     ///< audit instant (clock time the sweep ran at)
  Micros grace = 0;  ///< slack granted before lateness counts as exposure
  uint64_t rows_scanned = 0;
  uint64_t exposed_values = 0;
  uint64_t stale_index_entries = 0;
  uint64_t missing_index_entries = 0;
  uint64_t overdue_tuples = 0;
  uint64_t exposed_wal_segments = 0;
  uint64_t unscrubbed_recycled_segments = 0;
  uint64_t lingering_epoch_keys = 0;
  Micros max_exposure = 0;
  std::vector<TableAuditFindings> tables;

  /// Everything that counts as "accurate data outliving its deadline".
  /// `missing_index_entries` is excluded: a missing posting is a
  /// completeness bug, not retention — it is still surfaced and ToString'd.
  uint64_t total_exposed() const {
    return exposed_values + stale_index_entries + overdue_tuples +
           exposed_wal_segments + unscrubbed_recycled_segments +
           lingering_epoch_keys;
  }
  bool clean() const { return total_exposed() == 0 && missing_index_entries == 0; }

  /// Hard-fail API: OK when clean, a Corruption status carrying the counter
  /// breakdown otherwise (retention past a deadline IS corruption of the
  /// privacy contract).
  Status Verify() const;

  std::string ToString() const;
};

/// \brief Morsel-parallel deletion-assurance sweeper.
///
/// One Run() proves (or refutes) timely degradation across every layer that
/// holds sensitive bytes: table storage (page-range morsel sweeps over the
/// same MorselScheduler the parallel read path shards on — `workers` sweep
/// workers claim with partition affinity and steal from the busiest
/// partition, so one large partition is shared instead of serializing the
/// audit), the multi-resolution indexes (TablePartition::AuditIndexes —
/// one shared-latch acquisition per partition, so a live degrader is never
/// observed halfway), the WAL segment set (WalManager::AuditExposure) and
/// the epoch keystore (WalManager::LingeringEpochKeys). Read-only: sweeps
/// take each partition's shared latch a batch at a time and never block
/// writers or the degrader for longer than a scan batch.
class DeletionAuditor {
 public:
  /// `pool` (optional, not owned) is the Database's shared worker pool the
  /// sweep borrows threads from; null spawns sweep threads per call.
  DeletionAuditor(WalManager* wal, size_t workers, WorkerPool* pool = nullptr)
      : wal_(wal), workers_(workers == 0 ? 1 : workers), pool_(pool) {}

  /// Sweeps `tables` at `now`, granting `grace` of slack: a value is
  /// exposed only when it is still too accurate for the LCP phase expected
  /// at `now - grace`. Pass grace 0 on a VirtualClock where degradation is
  /// pumped; real deployments grant roughly one degradation-pass latency
  /// plus one checkpoint interval.
  AuditReport Run(const std::vector<Table*>& tables, Micros now,
                  Micros grace) const;

 private:
  WalManager* const wal_;
  const size_t workers_;
  WorkerPool* const pool_;  // shared Database pool, may be null
};

}  // namespace instantdb

#endif  // INSTANTDB_MAINTAIN_AUDIT_H_
