#include "anonymize/mondrian.h"

#include <algorithm>

namespace instantdb {

Mondrian::Mondrian(
    std::vector<std::shared_ptr<const DomainHierarchy>> domains, size_t k)
    : domains_(std::move(domains)), k_(k == 0 ? 1 : k) {}

int Mondrian::CoveringLevel(const DomainHierarchy& domain, int64_t lo,
                            int64_t hi) const {
  auto leaf = domain.LeafFromOrdinal(lo);
  if (!leaf.ok()) return domain.height() - 1;
  for (int level = 0; level < domain.height(); ++level) {
    auto general = domain.Generalize(*leaf, 0, level);
    if (!general.ok()) continue;
    auto range = domain.LeafRange(*general, level);
    if (range.ok() && range->lo <= lo && range->hi >= hi) return level;
  }
  return domain.height() - 1;
}

void Mondrian::Partition(std::vector<Item>* items, size_t begin, size_t end,
                         MondrianResult* result) const {
  const size_t n = end - begin;
  const size_t dims = domains_.size();

  // Pick the dimension with the widest normalized ordinal spread.
  int best_dim = -1;
  double best_spread = 0;
  std::vector<std::pair<int64_t, int64_t>> ranges(dims);
  for (size_t d = 0; d < dims; ++d) {
    int64_t lo = INT64_MAX, hi = INT64_MIN;
    for (size_t i = begin; i < end; ++i) {
      lo = std::min(lo, (*items)[i].ordinals[d]);
      hi = std::max(hi, (*items)[i].ordinals[d]);
    }
    ranges[d] = {lo, hi};
    auto cardinality = domains_[d]->CardinalityAtLevel(0);
    const double width = cardinality.ok() && *cardinality > 1
                             ? static_cast<double>(hi - lo) /
                                   static_cast<double>(*cardinality - 1)
                             : 0;
    if (width > best_spread) {
      best_spread = width;
      best_dim = static_cast<int>(d);
    }
  }

  if (n >= 2 * k_ && best_dim >= 0 && best_spread > 0) {
    // Split at the median of the chosen dimension, keeping equal values on
    // one side so both halves stay >= k when possible.
    std::sort(items->begin() + begin, items->begin() + end,
              [&](const Item& a, const Item& b) {
                return a.ordinals[best_dim] < b.ordinals[best_dim];
              });
    size_t split = begin + n / 2;
    // Move the split off runs of equal values.
    while (split < end &&
           (*items)[split].ordinals[best_dim] ==
               (*items)[split - 1].ordinals[best_dim]) {
      ++split;
    }
    if (split - begin >= k_ && end - split >= k_) {
      Partition(items, begin, split, result);
      Partition(items, split, end, result);
      return;
    }
    // Try the other direction.
    split = begin + n / 2;
    while (split > begin &&
           (*items)[split].ordinals[best_dim] ==
               (*items)[split - 1].ordinals[best_dim]) {
      --split;
    }
    if (split - begin >= k_ && end - split >= k_) {
      Partition(items, begin, split, result);
      Partition(items, split, end, result);
      return;
    }
  }

  // Finalize this equivalence class: generalize every attribute to the
  // lowest level covering the class's ordinal range.
  ++result->num_classes;
  std::vector<Value> values(dims);
  std::vector<int> levels(dims);
  for (size_t d = 0; d < dims; ++d) {
    const int level = CoveringLevel(*domains_[d], ranges[d].first,
                                    ranges[d].second);
    levels[d] = level;
    auto leaf = domains_[d]->LeafFromOrdinal(ranges[d].first);
    values[d] = leaf.ok()
                    ? domains_[d]->Generalize(*leaf, 0, level).ok()
                          ? *domains_[d]->Generalize(*leaf, 0, level)
                          : Value::Null()
                    : Value::Null();
  }
  for (size_t i = begin; i < end; ++i) {
    MondrianResult::AnonymizedRecord& record =
        result->records[(*items)[i].input_index];
    record.values = values;
    record.levels = levels;
    record.class_size = n;
  }
}

Result<MondrianResult> Mondrian::Anonymize(
    const std::vector<MondrianRecord>& records) const {
  MondrianResult result;
  result.records.resize(records.size());
  result.avg_level.assign(domains_.size(), 0);
  if (records.empty()) return result;
  if (records.size() < k_) {
    return Status::InvalidArgument("fewer records than k");
  }

  std::vector<Item> items(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    items[i].input_index = i;
    if (records[i].quasi_identifiers.size() != domains_.size()) {
      return Status::InvalidArgument("QI arity mismatch");
    }
    items[i].ordinals.resize(domains_.size());
    for (size_t d = 0; d < domains_.size(); ++d) {
      IDB_ASSIGN_OR_RETURN(
          items[i].ordinals[d],
          domains_[d]->LeafOrdinal(records[i].quasi_identifiers[d]));
    }
  }
  Partition(&items, 0, items.size(), &result);

  for (const auto& record : result.records) {
    for (size_t d = 0; d < domains_.size(); ++d) {
      result.avg_level[d] += record.levels[d];
    }
  }
  for (double& level : result.avg_level) {
    level /= static_cast<double>(records.size());
  }
  return result;
}

}  // namespace instantdb
