#ifndef INSTANTDB_ANONYMIZE_MONDRIAN_H_
#define INSTANTDB_ANONYMIZE_MONDRIAN_H_

#include <memory>
#include <vector>

#include "catalog/generalization.h"
#include "common/result.h"

namespace instantdb {

/// One record to anonymize: the quasi-identifier attributes as leaf values
/// of their domains (the identity/stable part rides along untouched).
struct MondrianRecord {
  std::vector<Value> quasi_identifiers;
};

/// Output: each quasi-identifier generalized to some level of its domain;
/// records in the same equivalence class share identical generalized values.
struct MondrianResult {
  struct AnonymizedRecord {
    std::vector<Value> values;
    std::vector<int> levels;
    size_t class_size = 0;  // size of the equivalence class
  };
  std::vector<AnonymizedRecord> records;  // input order preserved
  size_t num_classes = 0;
  /// Average generalization level per attribute — the information-loss
  /// proxy used by the usability experiment (B3).
  std::vector<double> avg_level;
};

/// \brief Greedy multidimensional k-anonymizer (Mondrian, LeFevre et al.)
/// over InstantDB domain hierarchies — the anonymization baseline the paper
/// compares degradation against (citing [7] k-anonymity, [11] personalized
/// privacy).
///
/// Works on leaf ordinals: recursively partitions the record set on the
/// attribute with the widest (normalized) ordinal range, splitting at the
/// median, while both halves keep >= k records. Each final partition's
/// values are generalized to the lowest hierarchy level whose node covers
/// the partition's ordinal range on that attribute.
///
/// This is a *static* technique: it must see the whole dataset, rewrites
/// every record, and (unlike degradation) removes the donor's identity
/// linkage. It is exercised only as a comparison point.
class Mondrian {
 public:
  /// `domains[i]` is the hierarchy of quasi-identifier column i.
  Mondrian(std::vector<std::shared_ptr<const DomainHierarchy>> domains,
           size_t k);

  Result<MondrianResult> Anonymize(
      const std::vector<MondrianRecord>& records) const;

 private:
  struct Item {
    size_t input_index;
    std::vector<int64_t> ordinals;
  };

  void Partition(std::vector<Item>* items, size_t begin, size_t end,
                 MondrianResult* result) const;
  /// Lowest level of `domain` whose covering node spans [lo, hi]; falls back
  /// to the root level.
  int CoveringLevel(const DomainHierarchy& domain, int64_t lo,
                    int64_t hi) const;

  std::vector<std::shared_ptr<const DomainHierarchy>> domains_;
  size_t k_;
};

}  // namespace instantdb

#endif  // INSTANTDB_ANONYMIZE_MONDRIAN_H_
