#ifndef INSTANTDB_INDEX_MULTIRES_INDEX_H_
#define INSTANTDB_INDEX_MULTIRES_INDEX_H_

#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "index/btree.h"

namespace instantdb {

/// \brief Degradation-aware index for one degradable attribute: one B+-tree
/// per LCP phase, keyed by the *leaf interval lower bound* of the stored
/// value (paper §III, "indexing techniques supporting efficiently
/// degradation").
///
/// Why this shape works:
///  - Values in phase p sit at one GT level, and GT nodes are DFS-numbered,
///    so a node's leaf interval lower bound orders values exactly like the
///    tree does. A predicate at any accuracy level k >= level(p) covers a
///    contiguous interval of leaf ordinals, hence a contiguous key range of
///    EVERY phase tree with level <= k — coarse queries stay range scans
///    instead of enumerating subtree members.
///  - Degradation moves an entry between two phase trees (delete + insert),
///    touching only those trees; queries at other levels are unaffected.
///  - A query at accuracy k probes the trees of all phases with
///    level(p) <= k and unions the results — precisely the paper's
///    σ_{P,k} over the computable subsets ST_j.
class MultiResolutionIndex {
 public:
  /// `column` must be degradable. Trees are created in `pool` (the table's
  /// index file); indexes are derived data, rebuilt on open.
  MultiResolutionIndex(const ColumnDef& column, BufferPool* pool);

  Status Init();

  /// Phase-0 insertion of an accurate value.
  Status OnInsert(RowId rid, const Value& leaf_value);

  /// Direct insertion at an arbitrary phase (index rebuild after recovery).
  Status OnInsertAtPhase(RowId rid, const Value& value, int phase);

  /// One degradation transition. `to_phase == lcp.num_phases()` removes the
  /// entry without reinserting (⊥). Values are those stored before/after.
  Status OnDegrade(RowId rid, int from_phase, const Value& old_value,
                   int to_phase, const Value& new_value);

  /// Tuple deletion while the value is in `phase`.
  Status OnDelete(RowId rid, int phase, const Value& value);

  /// Rows whose stored value generalizes to `value` at accuracy `level`
  /// (equality predicate at level k). Visits phases with level(p) <= level.
  Status LookupEqual(const Value& value, int level,
                     const std::function<bool(RowId)>& fn) const;

  /// Rows whose stored value falls in [lo, hi] at accuracy `level`
  /// (both bounds are level-`level` values).
  Status LookupRange(const Value& lo, const Value& hi, int level,
                     const std::function<bool(RowId)>& fn) const;

  uint64_t EntriesInPhase(int phase) const;
  int num_phases() const { return static_cast<int>(trees_.size()); }

 private:
  /// Key of `value` when stored at `phase`: its leaf interval lower bound.
  Result<int64_t> PhaseKey(const Value& value, int phase) const;
  Status ScanInterval(int first_level, const LeafInterval& interval,
                      const std::function<bool(RowId)>& fn) const;

  const ColumnDef& column_;
  BufferPool* const pool_;
  std::vector<std::unique_ptr<BPlusTree>> trees_;  // one per phase
};

}  // namespace instantdb

#endif  // INSTANTDB_INDEX_MULTIRES_INDEX_H_
