#ifndef INSTANTDB_INDEX_BTREE_H_
#define INSTANTDB_INDEX_BTREE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/coding.h"

namespace instantdb {

/// \brief Paged B+-tree over order-preserving byte keys, mapping to RowIds.
///
/// Keys are `EncodeOrdered` value bytes with the RowId appended (big-endian)
/// so duplicates of one attribute value stay unique and range scans by value
/// prefix enumerate all matching rows. Leaves are chained for scans.
/// Deletes are lazy (no rebalancing): degradation empties whole key ranges
/// front-to-back, so vacated leaves are simply left sparse until the tree is
/// rebuilt at the next open (indexes are derived data — recovery rebuilds
/// them from the state stores rather than logging index pages).
///
/// Several trees share one buffer pool / index file; each tree is addressed
/// by its meta page.
class BPlusTree {
 public:
  /// Allocates a meta page + empty root leaf.
  static Result<std::unique_ptr<BPlusTree>> Create(BufferPool* pool);
  /// Re-attaches to an existing tree.
  static Result<std::unique_ptr<BPlusTree>> Open(BufferPool* pool,
                                                 PageId meta_page);

  PageId meta_page() const { return meta_page_; }

  Status Insert(Slice key, RowId rid);
  /// Removes the exact key; NotFound if absent.
  Status Delete(Slice key);
  Result<bool> Contains(Slice key) const;

  /// In-order scan of keys in [begin, end) — empty `end` means +infinity.
  /// Stops early when `fn` returns false.
  Status Scan(Slice begin, Slice end,
              const std::function<bool(Slice key, RowId rid)>& fn) const;

  uint64_t num_entries() const { return num_entries_; }
  int height() const { return height_; }

  /// Persists the meta page (root, height, entry count). Inserts and
  /// deletes keep the meta in memory only — indexes are derived data
  /// rebuilt from scratch at database open, so per-operation meta writes
  /// would buy nothing on the ingest hot path. Call before reattaching to
  /// the tree with Open().
  Status Flush() { return StoreMeta(); }

  /// Composite key helpers.
  static void EncodeKey(const Value& value, RowId rid, std::string* dst);
  /// Lower bound of the key range of `value` (any rid).
  static void EncodeLowerBound(const Value& value, std::string* dst);
  /// Exclusive upper bound of the key range of `value`.
  static void EncodeUpperBound(const Value& value, std::string* dst);

 private:
  struct LeafEntry {
    std::string key;
    RowId rid;
  };
  struct InternalEntry {
    std::string key;  // smallest key in `child`'s subtree
    PageId child;
  };
  struct SplitResult {
    bool split = false;
    std::string separator;
    PageId new_page = kInvalidPageId;
  };

  BPlusTree(BufferPool* pool, PageId meta_page)
      : pool_(pool), page_size_(pool->disk()->page_size()), meta_page_(meta_page) {}

  Status LoadMeta();
  Status StoreMeta();

  Result<SplitResult> InsertRec(PageId page, Slice key, RowId rid);
  Status DeleteRec(PageId page, Slice key, bool* found);
  Result<PageId> FindLeaf(Slice key) const;

  // Node (de)serialization: nodes are parsed to vectors, mutated, and
  // re-serialized — simple and resilient for variable-length keys.
  static bool IsLeaf(const char* page);
  Status ReadLeaf(PageId id, std::vector<LeafEntry>* entries,
                  PageId* right) const;
  Status WriteLeaf(PageId id, const std::vector<LeafEntry>& entries,
                   PageId right);
  Status ReadInternal(PageId id, std::vector<InternalEntry>* entries,
                      PageId* leftmost) const;
  Status WriteInternal(PageId id, const std::vector<InternalEntry>& entries,
                       PageId leftmost);
  size_t LeafBytes(const std::vector<LeafEntry>& entries) const;
  size_t InternalBytes(const std::vector<InternalEntry>& entries) const;

  BufferPool* const pool_;
  const size_t page_size_;
  const PageId meta_page_;
  PageId root_ = kInvalidPageId;
  int height_ = 1;
  uint64_t num_entries_ = 0;
};

}  // namespace instantdb

#endif  // INSTANTDB_INDEX_BTREE_H_
