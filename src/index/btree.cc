#include "index/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "catalog/value.h"

namespace instantdb {

namespace {

constexpr uint8_t kMetaNode = 0;
constexpr uint8_t kInternalNode = 1;
constexpr uint8_t kLeafNode = 2;
constexpr size_t kNodeHeaderBytes = 8;

uint16_t NodeCount(const char* page) {
  return static_cast<uint16_t>(static_cast<uint8_t>(page[1]) |
                               (static_cast<uint8_t>(page[2]) << 8));
}

void SetNodeCount(char* page, uint16_t count) {
  page[1] = static_cast<char>(count & 0xFF);
  page[2] = static_cast<char>((count >> 8) & 0xFF);
}

uint16_t EntryKeyLen(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint8_t>(p[1]) << 8));
}

/// Child to descend into for `key`, reading the internal node in place
/// (the hot paths never materialize per-entry strings). When `child_pos`
/// is non-null it receives the insertion position for a split separator.
PageId DescendInPage(const char* page, Slice key, size_t* child_pos) {
  const uint16_t count = NodeCount(page);
  PageId child = DecodeFixed32(page + 4);  // leftmost
  size_t pos = 0;
  const char* p = page + kNodeHeaderBytes;
  for (uint16_t i = 0; i < count; ++i) {
    const uint16_t klen = EntryKeyLen(p);
    if (Slice(p + 2, klen) <= key) {
      child = DecodeFixed32(p + 2 + klen);
      pos = i + 1;
    } else {
      break;
    }
    p += 2 + klen + 4;
  }
  if (child_pos != nullptr) *child_pos = pos;
  return child;
}

}  // namespace

// --- key helpers ---------------------------------------------------------------

void BPlusTree::EncodeKey(const Value& value, RowId rid, std::string* dst) {
  value.EncodeOrdered(dst);
  // Big-endian rid so duplicates scan in row order.
  for (int i = 7; i >= 0; --i) {
    dst->push_back(static_cast<char>((rid >> (8 * i)) & 0xFF));
  }
}

void BPlusTree::EncodeLowerBound(const Value& value, std::string* dst) {
  value.EncodeOrdered(dst);
}

void BPlusTree::EncodeUpperBound(const Value& value, std::string* dst) {
  value.EncodeOrdered(dst);
  // All composite keys for `value` are value_bytes + 8 rid bytes; appending
  // 9 0xFF bytes exceeds every one of them while staying below the next
  // value's encoding... provided encodings are prefix-free, which
  // EncodeOrdered guarantees (fixed width for numerics, terminator for
  // strings).
  dst->append(9, '\xFF');
}

// --- construction ----------------------------------------------------------------

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(BufferPool* pool) {
  IDB_ASSIGN_OR_RETURN(PageGuard meta, pool->NewPage());
  IDB_ASSIGN_OR_RETURN(PageGuard root, pool->NewPage());
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree(pool, meta.id()));
  tree->root_ = root.id();
  tree->height_ = 1;
  tree->num_entries_ = 0;
  root.data()[0] = static_cast<char>(kLeafNode);
  EncodeFixed32(root.data() + 4, kInvalidPageId);  // no right sibling
  root.MarkDirty();
  meta.Release();
  IDB_RETURN_IF_ERROR(tree->StoreMeta());
  return tree;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Open(BufferPool* pool,
                                                   PageId meta_page) {
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree(pool, meta_page));
  IDB_RETURN_IF_ERROR(tree->LoadMeta());
  return tree;
}

Status BPlusTree::LoadMeta() {
  IDB_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  if (meta.data()[0] != static_cast<char>(kMetaNode)) {
    return Status::Corruption("not a btree meta page");
  }
  root_ = DecodeFixed32(meta.data() + 4);
  height_ = static_cast<int>(DecodeFixed32(meta.data() + 8));
  num_entries_ = DecodeFixed64(meta.data() + 12);
  return Status::OK();
}

Status BPlusTree::StoreMeta() {
  IDB_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  meta.data()[0] = static_cast<char>(kMetaNode);
  EncodeFixed32(meta.data() + 4, root_);
  EncodeFixed32(meta.data() + 8, static_cast<uint32_t>(height_));
  EncodeFixed64(meta.data() + 12, num_entries_);
  meta.MarkDirty();
  return Status::OK();
}

// --- node serialization -----------------------------------------------------------

bool BPlusTree::IsLeaf(const char* page) {
  return page[0] == static_cast<char>(kLeafNode);
}

Status BPlusTree::ReadLeaf(PageId id, std::vector<LeafEntry>* entries,
                           PageId* right) const {
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
  const char* page = guard.data();
  if (!IsLeaf(page)) return Status::Corruption("expected leaf node");
  const uint16_t count = static_cast<uint16_t>(DecodeFixed32(page + 1) & 0xFFFF);
  *right = DecodeFixed32(page + 4);
  entries->clear();
  entries->reserve(count);
  const char* p = page + kNodeHeaderBytes;
  for (uint16_t i = 0; i < count; ++i) {
    const uint16_t klen = static_cast<uint16_t>(DecodeFixed32(p) & 0xFFFF);
    p += 2;
    LeafEntry entry;
    entry.key.assign(p, klen);
    p += klen;
    entry.rid = DecodeFixed64(p);
    p += 8;
    entries->push_back(std::move(entry));
  }
  return Status::OK();
}

Status BPlusTree::WriteLeaf(PageId id, const std::vector<LeafEntry>& entries,
                            PageId right) {
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
  char* page = guard.data();
  std::memset(page, 0, page_size_);
  page[0] = static_cast<char>(kLeafNode);
  page[1] = static_cast<char>(entries.size() & 0xFF);
  page[2] = static_cast<char>((entries.size() >> 8) & 0xFF);
  EncodeFixed32(page + 4, right);
  char* p = page + kNodeHeaderBytes;
  for (const LeafEntry& entry : entries) {
    p[0] = static_cast<char>(entry.key.size() & 0xFF);
    p[1] = static_cast<char>((entry.key.size() >> 8) & 0xFF);
    p += 2;
    std::memcpy(p, entry.key.data(), entry.key.size());
    p += entry.key.size();
    EncodeFixed64(p, entry.rid);
    p += 8;
  }
  guard.MarkDirty();
  return Status::OK();
}

Status BPlusTree::ReadInternal(PageId id, std::vector<InternalEntry>* entries,
                               PageId* leftmost) const {
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
  const char* page = guard.data();
  if (page[0] != static_cast<char>(kInternalNode)) {
    return Status::Corruption("expected internal node");
  }
  const uint16_t count = static_cast<uint16_t>(DecodeFixed32(page + 1) & 0xFFFF);
  *leftmost = DecodeFixed32(page + 4);
  entries->clear();
  entries->reserve(count);
  const char* p = page + kNodeHeaderBytes;
  for (uint16_t i = 0; i < count; ++i) {
    const uint16_t klen = static_cast<uint16_t>(DecodeFixed32(p) & 0xFFFF);
    p += 2;
    InternalEntry entry;
    entry.key.assign(p, klen);
    p += klen;
    entry.child = DecodeFixed32(p);
    p += 4;
    entries->push_back(std::move(entry));
  }
  return Status::OK();
}

Status BPlusTree::WriteInternal(PageId id,
                                const std::vector<InternalEntry>& entries,
                                PageId leftmost) {
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
  char* page = guard.data();
  std::memset(page, 0, page_size_);
  page[0] = static_cast<char>(kInternalNode);
  page[1] = static_cast<char>(entries.size() & 0xFF);
  page[2] = static_cast<char>((entries.size() >> 8) & 0xFF);
  EncodeFixed32(page + 4, leftmost);
  char* p = page + kNodeHeaderBytes;
  for (const InternalEntry& entry : entries) {
    p[0] = static_cast<char>(entry.key.size() & 0xFF);
    p[1] = static_cast<char>((entry.key.size() >> 8) & 0xFF);
    p += 2;
    std::memcpy(p, entry.key.data(), entry.key.size());
    p += entry.key.size();
    EncodeFixed32(p, entry.child);
    p += 4;
  }
  guard.MarkDirty();
  return Status::OK();
}

size_t BPlusTree::LeafBytes(const std::vector<LeafEntry>& entries) const {
  size_t bytes = kNodeHeaderBytes;
  for (const LeafEntry& e : entries) bytes += 2 + e.key.size() + 8;
  return bytes;
}

size_t BPlusTree::InternalBytes(const std::vector<InternalEntry>& entries) const {
  size_t bytes = kNodeHeaderBytes;
  for (const InternalEntry& e : entries) bytes += 2 + e.key.size() + 4;
  return bytes;
}

// --- insert ---------------------------------------------------------------------

Status BPlusTree::Insert(Slice key, RowId rid) {
  if (key.size() > page_size_ / 8) {
    return Status::InvalidArgument("index key too large");
  }
  IDB_ASSIGN_OR_RETURN(SplitResult split, InsertRec(root_, key, rid));
  ++num_entries_;
  if (split.split) {
    // Grow a new root above the old one.
    IDB_ASSIGN_OR_RETURN(PageGuard new_root, pool_->NewPage());
    const PageId new_root_id = new_root.id();
    new_root.Release();
    std::vector<InternalEntry> entries = {{split.separator, split.new_page}};
    IDB_RETURN_IF_ERROR(WriteInternal(new_root_id, entries, root_));
    root_ = new_root_id;
    ++height_;
    // Meta is only re-persisted when the root moves: indexes are derived
    // data rebuilt from scratch at open, so per-operation meta writes buy
    // nothing and cost a page fetch on the ingest hot path.
    return StoreMeta();
  }
  return Status::OK();
}

Result<BPlusTree::SplitResult> BPlusTree::InsertRec(PageId page_id, Slice key,
                                                    RowId rid) {
  PageId child = kInvalidPageId;
  size_t child_pos = 0;  // insertion position for a split separator
  {
    IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
    char* page = guard.data();
    if (IsLeaf(page)) {
      // Fast path: splice the entry into the page bytes in place. One walk
      // finds the insertion offset and the used size — no per-entry string
      // materialization, no full-page rewrite. This is what keeps index
      // maintenance off the ingest critical path's allocator.
      const uint16_t count = NodeCount(page);
      const size_t need = 2 + key.size() + 8;
      const char* p = page + kNodeHeaderBytes;
      size_t insert_off = 0;
      bool found = false;
      for (uint16_t i = 0; i < count; ++i) {
        const uint16_t klen = EntryKeyLen(p);
        if (!found && !(Slice(p + 2, klen) < key)) {
          insert_off = static_cast<size_t>(p - page);
          found = true;
        }
        p += 2 + klen + 8;
      }
      const size_t used = static_cast<size_t>(p - page);
      if (!found) insert_off = used;
      if (used + need <= page_size_) {
        std::memmove(page + insert_off + need, page + insert_off,
                     used - insert_off);
        char* dst = page + insert_off;
        dst[0] = static_cast<char>(key.size() & 0xFF);
        dst[1] = static_cast<char>((key.size() >> 8) & 0xFF);
        std::memcpy(dst + 2, key.data(), key.size());
        EncodeFixed64(dst + 2 + key.size(), rid);
        SetNodeCount(page, static_cast<uint16_t>(count + 1));
        guard.MarkDirty();
        return SplitResult{};
      }
      // Page full: fall through to the materializing split path below.
    } else {
      child = DescendInPage(page, key, &child_pos);
    }
  }

  if (child == kInvalidPageId) {
    // Leaf split (cold path): materialize, divide, rewrite both halves.
    std::vector<LeafEntry> entries;
    PageId right;
    IDB_RETURN_IF_ERROR(ReadLeaf(page_id, &entries, &right));
    auto pos = std::lower_bound(
        entries.begin(), entries.end(), key,
        [](const LeafEntry& e, Slice k) { return Slice(e.key) < k; });
    entries.insert(pos, LeafEntry{std::string(key), rid});
    const size_t mid = entries.size() / 2;
    std::vector<LeafEntry> right_half(entries.begin() + mid, entries.end());
    entries.resize(mid);
    IDB_ASSIGN_OR_RETURN(PageGuard new_page, pool_->NewPage());
    const PageId new_id = new_page.id();
    new_page.Release();
    IDB_RETURN_IF_ERROR(WriteLeaf(new_id, right_half, right));
    IDB_RETURN_IF_ERROR(WriteLeaf(page_id, entries, new_id));
    SplitResult result;
    result.split = true;
    result.separator = right_half.front().key;
    result.new_page = new_id;
    return result;
  }

  IDB_ASSIGN_OR_RETURN(SplitResult child_split, InsertRec(child, key, rid));
  if (!child_split.split) return SplitResult{};

  std::vector<InternalEntry> entries;
  PageId leftmost;
  IDB_RETURN_IF_ERROR(ReadInternal(page_id, &entries, &leftmost));

  entries.insert(entries.begin() + child_pos,
                 InternalEntry{child_split.separator, child_split.new_page});
  if (InternalBytes(entries) <= page_size_) {
    IDB_RETURN_IF_ERROR(WriteInternal(page_id, entries, leftmost));
    return SplitResult{};
  }
  // Split internal node: middle separator moves up.
  const size_t mid = entries.size() / 2;
  SplitResult result;
  result.split = true;
  result.separator = entries[mid].key;
  std::vector<InternalEntry> right_half(entries.begin() + mid + 1,
                                        entries.end());
  const PageId right_leftmost = entries[mid].child;
  entries.resize(mid);
  IDB_ASSIGN_OR_RETURN(PageGuard new_page, pool_->NewPage());
  const PageId new_id = new_page.id();
  new_page.Release();
  IDB_RETURN_IF_ERROR(WriteInternal(new_id, right_half, right_leftmost));
  IDB_RETURN_IF_ERROR(WriteInternal(page_id, entries, leftmost));
  result.new_page = new_id;
  return result;
}

// --- delete / lookup ---------------------------------------------------------------

Result<PageId> BPlusTree::FindLeaf(Slice key) const {
  PageId page_id = root_;
  for (;;) {
    IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
    if (IsLeaf(guard.data())) return page_id;
    page_id = DescendInPage(guard.data(), key, nullptr);
  }
}

Status BPlusTree::Delete(Slice key) {
  IDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  // In-page removal: find the exact entry, slide the tail down. (Leaf
  // underflow is tolerated, as in the rewrite-based path before it.)
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(leaf_id));
  char* page = guard.data();
  const uint16_t count = NodeCount(page);
  const char* p = page + kNodeHeaderBytes;
  size_t entry_off = 0;
  size_t entry_bytes = 0;
  for (uint16_t i = 0; i < count; ++i) {
    const uint16_t klen = EntryKeyLen(p);
    if (Slice(p + 2, klen) == key) {
      entry_off = static_cast<size_t>(p - page);
      entry_bytes = 2 + static_cast<size_t>(klen) + 8;
    }
    p += 2 + klen + 8;
  }
  if (entry_bytes == 0) return Status::NotFound("key not in index");
  const size_t used = static_cast<size_t>(p - page);
  std::memmove(page + entry_off, page + entry_off + entry_bytes,
               used - entry_off - entry_bytes);
  SetNodeCount(page, static_cast<uint16_t>(count - 1));
  guard.MarkDirty();
  --num_entries_;
  return Status::OK();
}

Result<bool> BPlusTree::Contains(Slice key) const {
  IDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(leaf_id));
  const char* page = guard.data();
  const uint16_t count = NodeCount(page);
  const char* p = page + kNodeHeaderBytes;
  for (uint16_t i = 0; i < count; ++i) {
    const uint16_t klen = EntryKeyLen(p);
    if (Slice(p + 2, klen) == key) return true;
    p += 2 + klen + 8;
  }
  return false;
}

Status BPlusTree::Scan(
    Slice begin, Slice end,
    const std::function<bool(Slice key, RowId rid)>& fn) const {
  IDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(begin));
  while (leaf_id != kInvalidPageId) {
    std::vector<LeafEntry> entries;
    PageId right;
    IDB_RETURN_IF_ERROR(ReadLeaf(leaf_id, &entries, &right));
    for (const LeafEntry& entry : entries) {
      if (Slice(entry.key) < begin) continue;
      if (!end.empty() && Slice(entry.key) >= end) return Status::OK();
      if (!fn(entry.key, entry.rid)) return Status::OK();
    }
    leaf_id = right;
  }
  return Status::OK();
}

}  // namespace instantdb
