#include "index/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "catalog/value.h"

namespace instantdb {

namespace {

constexpr uint8_t kMetaNode = 0;
constexpr uint8_t kInternalNode = 1;
constexpr uint8_t kLeafNode = 2;
constexpr size_t kNodeHeaderBytes = 8;

}  // namespace

// --- key helpers ---------------------------------------------------------------

void BPlusTree::EncodeKey(const Value& value, RowId rid, std::string* dst) {
  value.EncodeOrdered(dst);
  // Big-endian rid so duplicates scan in row order.
  for (int i = 7; i >= 0; --i) {
    dst->push_back(static_cast<char>((rid >> (8 * i)) & 0xFF));
  }
}

void BPlusTree::EncodeLowerBound(const Value& value, std::string* dst) {
  value.EncodeOrdered(dst);
}

void BPlusTree::EncodeUpperBound(const Value& value, std::string* dst) {
  value.EncodeOrdered(dst);
  // All composite keys for `value` are value_bytes + 8 rid bytes; appending
  // 9 0xFF bytes exceeds every one of them while staying below the next
  // value's encoding... provided encodings are prefix-free, which
  // EncodeOrdered guarantees (fixed width for numerics, terminator for
  // strings).
  dst->append(9, '\xFF');
}

// --- construction ----------------------------------------------------------------

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(BufferPool* pool) {
  IDB_ASSIGN_OR_RETURN(PageGuard meta, pool->NewPage());
  IDB_ASSIGN_OR_RETURN(PageGuard root, pool->NewPage());
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree(pool, meta.id()));
  tree->root_ = root.id();
  tree->height_ = 1;
  tree->num_entries_ = 0;
  root.data()[0] = static_cast<char>(kLeafNode);
  EncodeFixed32(root.data() + 4, kInvalidPageId);  // no right sibling
  root.MarkDirty();
  meta.Release();
  IDB_RETURN_IF_ERROR(tree->StoreMeta());
  return tree;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Open(BufferPool* pool,
                                                   PageId meta_page) {
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree(pool, meta_page));
  IDB_RETURN_IF_ERROR(tree->LoadMeta());
  return tree;
}

Status BPlusTree::LoadMeta() {
  IDB_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  if (meta.data()[0] != static_cast<char>(kMetaNode)) {
    return Status::Corruption("not a btree meta page");
  }
  root_ = DecodeFixed32(meta.data() + 4);
  height_ = static_cast<int>(DecodeFixed32(meta.data() + 8));
  num_entries_ = DecodeFixed64(meta.data() + 12);
  return Status::OK();
}

Status BPlusTree::StoreMeta() {
  IDB_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  meta.data()[0] = static_cast<char>(kMetaNode);
  EncodeFixed32(meta.data() + 4, root_);
  EncodeFixed32(meta.data() + 8, static_cast<uint32_t>(height_));
  EncodeFixed64(meta.data() + 12, num_entries_);
  meta.MarkDirty();
  return Status::OK();
}

// --- node serialization -----------------------------------------------------------

bool BPlusTree::IsLeaf(const char* page) {
  return page[0] == static_cast<char>(kLeafNode);
}

Status BPlusTree::ReadLeaf(PageId id, std::vector<LeafEntry>* entries,
                           PageId* right) const {
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
  const char* page = guard.data();
  if (!IsLeaf(page)) return Status::Corruption("expected leaf node");
  const uint16_t count = static_cast<uint16_t>(DecodeFixed32(page + 1) & 0xFFFF);
  *right = DecodeFixed32(page + 4);
  entries->clear();
  entries->reserve(count);
  const char* p = page + kNodeHeaderBytes;
  for (uint16_t i = 0; i < count; ++i) {
    const uint16_t klen = static_cast<uint16_t>(DecodeFixed32(p) & 0xFFFF);
    p += 2;
    LeafEntry entry;
    entry.key.assign(p, klen);
    p += klen;
    entry.rid = DecodeFixed64(p);
    p += 8;
    entries->push_back(std::move(entry));
  }
  return Status::OK();
}

Status BPlusTree::WriteLeaf(PageId id, const std::vector<LeafEntry>& entries,
                            PageId right) {
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
  char* page = guard.data();
  std::memset(page, 0, page_size_);
  page[0] = static_cast<char>(kLeafNode);
  page[1] = static_cast<char>(entries.size() & 0xFF);
  page[2] = static_cast<char>((entries.size() >> 8) & 0xFF);
  EncodeFixed32(page + 4, right);
  char* p = page + kNodeHeaderBytes;
  for (const LeafEntry& entry : entries) {
    p[0] = static_cast<char>(entry.key.size() & 0xFF);
    p[1] = static_cast<char>((entry.key.size() >> 8) & 0xFF);
    p += 2;
    std::memcpy(p, entry.key.data(), entry.key.size());
    p += entry.key.size();
    EncodeFixed64(p, entry.rid);
    p += 8;
  }
  guard.MarkDirty();
  return Status::OK();
}

Status BPlusTree::ReadInternal(PageId id, std::vector<InternalEntry>* entries,
                               PageId* leftmost) const {
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
  const char* page = guard.data();
  if (page[0] != static_cast<char>(kInternalNode)) {
    return Status::Corruption("expected internal node");
  }
  const uint16_t count = static_cast<uint16_t>(DecodeFixed32(page + 1) & 0xFFFF);
  *leftmost = DecodeFixed32(page + 4);
  entries->clear();
  entries->reserve(count);
  const char* p = page + kNodeHeaderBytes;
  for (uint16_t i = 0; i < count; ++i) {
    const uint16_t klen = static_cast<uint16_t>(DecodeFixed32(p) & 0xFFFF);
    p += 2;
    InternalEntry entry;
    entry.key.assign(p, klen);
    p += klen;
    entry.child = DecodeFixed32(p);
    p += 4;
    entries->push_back(std::move(entry));
  }
  return Status::OK();
}

Status BPlusTree::WriteInternal(PageId id,
                                const std::vector<InternalEntry>& entries,
                                PageId leftmost) {
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
  char* page = guard.data();
  std::memset(page, 0, page_size_);
  page[0] = static_cast<char>(kInternalNode);
  page[1] = static_cast<char>(entries.size() & 0xFF);
  page[2] = static_cast<char>((entries.size() >> 8) & 0xFF);
  EncodeFixed32(page + 4, leftmost);
  char* p = page + kNodeHeaderBytes;
  for (const InternalEntry& entry : entries) {
    p[0] = static_cast<char>(entry.key.size() & 0xFF);
    p[1] = static_cast<char>((entry.key.size() >> 8) & 0xFF);
    p += 2;
    std::memcpy(p, entry.key.data(), entry.key.size());
    p += entry.key.size();
    EncodeFixed32(p, entry.child);
    p += 4;
  }
  guard.MarkDirty();
  return Status::OK();
}

size_t BPlusTree::LeafBytes(const std::vector<LeafEntry>& entries) const {
  size_t bytes = kNodeHeaderBytes;
  for (const LeafEntry& e : entries) bytes += 2 + e.key.size() + 8;
  return bytes;
}

size_t BPlusTree::InternalBytes(const std::vector<InternalEntry>& entries) const {
  size_t bytes = kNodeHeaderBytes;
  for (const InternalEntry& e : entries) bytes += 2 + e.key.size() + 4;
  return bytes;
}

// --- insert ---------------------------------------------------------------------

Status BPlusTree::Insert(Slice key, RowId rid) {
  if (key.size() > page_size_ / 8) {
    return Status::InvalidArgument("index key too large");
  }
  IDB_ASSIGN_OR_RETURN(SplitResult split, InsertRec(root_, key, rid));
  if (split.split) {
    // Grow a new root above the old one.
    IDB_ASSIGN_OR_RETURN(PageGuard new_root, pool_->NewPage());
    const PageId new_root_id = new_root.id();
    new_root.Release();
    std::vector<InternalEntry> entries = {{split.separator, split.new_page}};
    IDB_RETURN_IF_ERROR(WriteInternal(new_root_id, entries, root_));
    root_ = new_root_id;
    ++height_;
  }
  ++num_entries_;
  return StoreMeta();
}

Result<BPlusTree::SplitResult> BPlusTree::InsertRec(PageId page_id, Slice key,
                                                    RowId rid) {
  IDB_ASSIGN_OR_RETURN(PageGuard probe, pool_->FetchPage(page_id));
  const bool leaf = IsLeaf(probe.data());
  probe.Release();

  if (leaf) {
    std::vector<LeafEntry> entries;
    PageId right;
    IDB_RETURN_IF_ERROR(ReadLeaf(page_id, &entries, &right));
    auto pos = std::lower_bound(
        entries.begin(), entries.end(), key,
        [](const LeafEntry& e, Slice k) { return Slice(e.key) < k; });
    entries.insert(pos, LeafEntry{std::string(key), rid});
    if (LeafBytes(entries) <= page_size_) {
      IDB_RETURN_IF_ERROR(WriteLeaf(page_id, entries, right));
      return SplitResult{};
    }
    // Split: right half moves to a fresh page chained after this one.
    const size_t mid = entries.size() / 2;
    std::vector<LeafEntry> right_half(entries.begin() + mid, entries.end());
    entries.resize(mid);
    IDB_ASSIGN_OR_RETURN(PageGuard new_page, pool_->NewPage());
    const PageId new_id = new_page.id();
    new_page.Release();
    IDB_RETURN_IF_ERROR(WriteLeaf(new_id, right_half, right));
    IDB_RETURN_IF_ERROR(WriteLeaf(page_id, entries, new_id));
    SplitResult result;
    result.split = true;
    result.separator = right_half.front().key;
    result.new_page = new_id;
    return result;
  }

  std::vector<InternalEntry> entries;
  PageId leftmost;
  IDB_RETURN_IF_ERROR(ReadInternal(page_id, &entries, &leftmost));
  // Child to descend into: last entry with key <= target, else leftmost.
  PageId child = leftmost;
  size_t child_pos = 0;  // insertion position for a split separator
  for (size_t i = 0; i < entries.size(); ++i) {
    if (Slice(entries[i].key) <= key) {
      child = entries[i].child;
      child_pos = i + 1;
    } else {
      break;
    }
  }
  IDB_ASSIGN_OR_RETURN(SplitResult child_split, InsertRec(child, key, rid));
  if (!child_split.split) return SplitResult{};

  entries.insert(entries.begin() + child_pos,
                 InternalEntry{child_split.separator, child_split.new_page});
  if (InternalBytes(entries) <= page_size_) {
    IDB_RETURN_IF_ERROR(WriteInternal(page_id, entries, leftmost));
    return SplitResult{};
  }
  // Split internal node: middle separator moves up.
  const size_t mid = entries.size() / 2;
  SplitResult result;
  result.split = true;
  result.separator = entries[mid].key;
  std::vector<InternalEntry> right_half(entries.begin() + mid + 1,
                                        entries.end());
  const PageId right_leftmost = entries[mid].child;
  entries.resize(mid);
  IDB_ASSIGN_OR_RETURN(PageGuard new_page, pool_->NewPage());
  const PageId new_id = new_page.id();
  new_page.Release();
  IDB_RETURN_IF_ERROR(WriteInternal(new_id, right_half, right_leftmost));
  IDB_RETURN_IF_ERROR(WriteInternal(page_id, entries, leftmost));
  result.new_page = new_id;
  return result;
}

// --- delete / lookup ---------------------------------------------------------------

Result<PageId> BPlusTree::FindLeaf(Slice key) const {
  PageId page_id = root_;
  for (;;) {
    IDB_ASSIGN_OR_RETURN(PageGuard probe, pool_->FetchPage(page_id));
    const bool leaf = IsLeaf(probe.data());
    probe.Release();
    if (leaf) return page_id;
    std::vector<InternalEntry> entries;
    PageId leftmost;
    IDB_RETURN_IF_ERROR(ReadInternal(page_id, &entries, &leftmost));
    PageId child = leftmost;
    for (const InternalEntry& entry : entries) {
      if (Slice(entry.key) <= key) {
        child = entry.child;
      } else {
        break;
      }
    }
    page_id = child;
  }
}

Status BPlusTree::Delete(Slice key) {
  IDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  std::vector<LeafEntry> entries;
  PageId right;
  IDB_RETURN_IF_ERROR(ReadLeaf(leaf_id, &entries, &right));
  auto pos = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const LeafEntry& e, Slice k) { return Slice(e.key) < k; });
  if (pos == entries.end() || Slice(pos->key) != key) {
    return Status::NotFound("key not in index");
  }
  entries.erase(pos);
  IDB_RETURN_IF_ERROR(WriteLeaf(leaf_id, entries, right));
  --num_entries_;
  return StoreMeta();
}

Result<bool> BPlusTree::Contains(Slice key) const {
  IDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  std::vector<LeafEntry> entries;
  PageId right;
  IDB_RETURN_IF_ERROR(ReadLeaf(leaf_id, &entries, &right));
  auto pos = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const LeafEntry& e, Slice k) { return Slice(e.key) < k; });
  return pos != entries.end() && Slice(pos->key) == key;
}

Status BPlusTree::Scan(
    Slice begin, Slice end,
    const std::function<bool(Slice key, RowId rid)>& fn) const {
  IDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(begin));
  while (leaf_id != kInvalidPageId) {
    std::vector<LeafEntry> entries;
    PageId right;
    IDB_RETURN_IF_ERROR(ReadLeaf(leaf_id, &entries, &right));
    for (const LeafEntry& entry : entries) {
      if (Slice(entry.key) < begin) continue;
      if (!end.empty() && Slice(entry.key) >= end) return Status::OK();
      if (!fn(entry.key, entry.rid)) return Status::OK();
    }
    leaf_id = right;
  }
  return Status::OK();
}

}  // namespace instantdb
