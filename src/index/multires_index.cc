#include "index/multires_index.h"

namespace instantdb {

MultiResolutionIndex::MultiResolutionIndex(const ColumnDef& column,
                                           BufferPool* pool)
    : column_(column), pool_(pool) {}

Status MultiResolutionIndex::Init() {
  trees_.clear();
  for (int p = 0; p < column_.lcp.num_phases(); ++p) {
    IDB_ASSIGN_OR_RETURN(auto tree, BPlusTree::Create(pool_));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

Result<int64_t> MultiResolutionIndex::PhaseKey(const Value& value,
                                               int phase) const {
  IDB_ASSIGN_OR_RETURN(
      LeafInterval interval,
      column_.hierarchy->LeafRange(value, column_.lcp.phase(phase).level));
  return interval.lo;
}

Status MultiResolutionIndex::OnInsert(RowId rid, const Value& leaf_value) {
  return OnInsertAtPhase(rid, leaf_value, 0);
}

Status MultiResolutionIndex::OnInsertAtPhase(RowId rid, const Value& value,
                                             int phase) {
  IDB_ASSIGN_OR_RETURN(int64_t key, PhaseKey(value, phase));
  std::string encoded;
  BPlusTree::EncodeKey(Value::Int64(key), rid, &encoded);
  return trees_[phase]->Insert(encoded, rid);
}

Status MultiResolutionIndex::OnDegrade(RowId rid, int from_phase,
                                       const Value& old_value, int to_phase,
                                       const Value& new_value) {
  // Re-entry safe: a degrade apply can fail partway through on an I/O error
  // and be retried by the next pass (or replayed by WAL redo), so the old
  // posting may already be gone and the new one may already exist. Treat
  // both as success, not corruption — tree ops are not atomic across the
  // delete/insert pair.
  IDB_ASSIGN_OR_RETURN(int64_t old_key, PhaseKey(old_value, from_phase));
  std::string encoded;
  BPlusTree::EncodeKey(Value::Int64(old_key), rid, &encoded);
  const Status removed = trees_[from_phase]->Delete(encoded);
  if (!removed.ok() && !removed.IsNotFound()) return removed;
  if (to_phase >= num_phases()) return Status::OK();  // removed (⊥)
  IDB_ASSIGN_OR_RETURN(int64_t new_key, PhaseKey(new_value, to_phase));
  encoded.clear();
  BPlusTree::EncodeKey(Value::Int64(new_key), rid, &encoded);
  IDB_ASSIGN_OR_RETURN(bool present, trees_[to_phase]->Contains(encoded));
  if (present) return Status::OK();
  return trees_[to_phase]->Insert(encoded, rid);
}

Status MultiResolutionIndex::OnDelete(RowId rid, int phase,
                                      const Value& value) {
  IDB_ASSIGN_OR_RETURN(int64_t key, PhaseKey(value, phase));
  std::string encoded;
  BPlusTree::EncodeKey(Value::Int64(key), rid, &encoded);
  return trees_[phase]->Delete(encoded);
}

Status MultiResolutionIndex::ScanInterval(
    int max_level, const LeafInterval& interval,
    const std::function<bool(RowId)>& fn) const {
  std::string begin, end;
  BPlusTree::EncodeLowerBound(Value::Int64(interval.lo), &begin);
  BPlusTree::EncodeUpperBound(Value::Int64(interval.hi), &end);
  for (int p = 0; p < num_phases(); ++p) {
    if (column_.lcp.phase(p).level > max_level) continue;
    bool keep_going = true;
    IDB_RETURN_IF_ERROR(trees_[p]->Scan(
        begin, end, [&](Slice, RowId rid) { return keep_going = fn(rid); }));
    if (!keep_going) break;
  }
  return Status::OK();
}

Status MultiResolutionIndex::LookupEqual(
    const Value& value, int level,
    const std::function<bool(RowId)>& fn) const {
  IDB_ASSIGN_OR_RETURN(LeafInterval interval,
                       column_.hierarchy->LeafRange(value, level));
  return ScanInterval(level, interval, fn);
}

Status MultiResolutionIndex::LookupRange(
    const Value& lo, const Value& hi, int level,
    const std::function<bool(RowId)>& fn) const {
  IDB_ASSIGN_OR_RETURN(LeafInterval lo_interval,
                       column_.hierarchy->LeafRange(lo, level));
  IDB_ASSIGN_OR_RETURN(LeafInterval hi_interval,
                       column_.hierarchy->LeafRange(hi, level));
  if (hi_interval.hi < lo_interval.lo) return Status::OK();
  return ScanInterval(level, LeafInterval{lo_interval.lo, hi_interval.hi}, fn);
}

uint64_t MultiResolutionIndex::EntriesInPhase(int phase) const {
  return trees_[phase]->num_entries();
}

}  // namespace instantdb
