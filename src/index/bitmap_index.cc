#include "index/bitmap_index.h"

namespace instantdb {

BitmapColumnIndex::BitmapColumnIndex(const ColumnDef& column)
    : column_(column), phases_(column.lcp.num_phases()) {}

Result<int64_t> BitmapColumnIndex::PhaseKey(const Value& value,
                                            int phase) const {
  IDB_ASSIGN_OR_RETURN(
      LeafInterval interval,
      column_.hierarchy->LeafRange(value, column_.lcp.phase(phase).level));
  return interval.lo;
}

Status BitmapColumnIndex::OnInsert(RowId rid, const Value& leaf_value) {
  return OnInsertAtPhase(rid, leaf_value, 0);
}

Status BitmapColumnIndex::OnInsertAtPhase(RowId rid, const Value& value,
                                          int phase) {
  IDB_ASSIGN_OR_RETURN(int64_t key, PhaseKey(value, phase));
  phases_[phase][key].Set(rid);
  return Status::OK();
}

Status BitmapColumnIndex::OnDegrade(RowId rid, int from_phase,
                                    const Value& old_value, int to_phase,
                                    const Value& new_value) {
  IDB_ASSIGN_OR_RETURN(int64_t old_key, PhaseKey(old_value, from_phase));
  auto it = phases_[from_phase].find(old_key);
  if (it != phases_[from_phase].end()) {
    it->second.Clear(rid);
    if (it->second.Count() == 0) phases_[from_phase].erase(it);
  }
  if (to_phase >= num_phases()) return Status::OK();
  IDB_ASSIGN_OR_RETURN(int64_t new_key, PhaseKey(new_value, to_phase));
  phases_[to_phase][new_key].Set(rid);
  return Status::OK();
}

Status BitmapColumnIndex::OnDelete(RowId rid, int phase, const Value& value) {
  IDB_ASSIGN_OR_RETURN(int64_t key, PhaseKey(value, phase));
  auto it = phases_[phase].find(key);
  if (it != phases_[phase].end()) {
    it->second.Clear(rid);
    if (it->second.Count() == 0) phases_[phase].erase(it);
  }
  return Status::OK();
}

Result<Bitmap> BitmapColumnIndex::CollectInterval(
    int max_level, const LeafInterval& interval) const {
  Bitmap out;
  for (int p = 0; p < num_phases(); ++p) {
    if (column_.lcp.phase(p).level > max_level) continue;
    auto it = phases_[p].lower_bound(interval.lo);
    for (; it != phases_[p].end() && it->first <= interval.hi; ++it) {
      out.OrWith(it->second);
    }
  }
  return out;
}

Result<Bitmap> BitmapColumnIndex::LookupEqual(const Value& value,
                                              int level) const {
  IDB_ASSIGN_OR_RETURN(LeafInterval interval,
                       column_.hierarchy->LeafRange(value, level));
  return CollectInterval(level, interval);
}

Result<Bitmap> BitmapColumnIndex::LookupRange(const Value& lo, const Value& hi,
                                              int level) const {
  IDB_ASSIGN_OR_RETURN(LeafInterval lo_interval,
                       column_.hierarchy->LeafRange(lo, level));
  IDB_ASSIGN_OR_RETURN(LeafInterval hi_interval,
                       column_.hierarchy->LeafRange(hi, level));
  if (hi_interval.hi < lo_interval.lo) return Bitmap{};
  return CollectInterval(level, LeafInterval{lo_interval.lo, hi_interval.hi});
}

size_t BitmapColumnIndex::DistinctInPhase(int phase) const {
  return phases_[phase].size();
}

size_t BitmapColumnIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& phase : phases_) {
    for (const auto& [key, bitmap] : phase) bytes += bitmap.MemoryBytes();
  }
  return bytes;
}

}  // namespace instantdb
