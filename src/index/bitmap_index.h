#ifndef INSTANTDB_INDEX_BITMAP_INDEX_H_
#define INSTANTDB_INDEX_BITMAP_INDEX_H_

#include <map>
#include <vector>

#include "catalog/schema.h"
#include "storage/page.h"
#include "util/bitmap.h"

namespace instantdb {

/// \brief Bitmap index over one degradable attribute — the OLAP-side answer
/// to the paper's §III: "multiple indexes to speed up even low selectivity
/// queries thanks to bitmap-like indexes … OLAP must take care of updates
/// incurred by degradation."
///
/// Degradation *shrinks* the value domain level by level, which is exactly
/// the regime where bitmaps dominate trees: a phase at the city level keeps
/// one bitmap per city, a phase at the country level one per country. Like
/// the multi-resolution tree index, it keeps per-phase structures keyed by
/// leaf-interval lower bound, so accuracy-k predicates become unions over a
/// contiguous key interval. Bitmaps are memory-resident derived data,
/// rebuilt from the state stores on open.
class BitmapColumnIndex {
 public:
  explicit BitmapColumnIndex(const ColumnDef& column);

  Status OnInsert(RowId rid, const Value& leaf_value);
  /// Direct insertion at an arbitrary phase (index rebuild after recovery).
  Status OnInsertAtPhase(RowId rid, const Value& value, int phase);
  Status OnDegrade(RowId rid, int from_phase, const Value& old_value,
                   int to_phase, const Value& new_value);
  Status OnDelete(RowId rid, int phase, const Value& value);

  /// Bitmap of rows matching `value` at accuracy `level` (union over all
  /// computable phases).
  Result<Bitmap> LookupEqual(const Value& value, int level) const;
  /// Bitmap of rows in [lo, hi] at accuracy `level`.
  Result<Bitmap> LookupRange(const Value& lo, const Value& hi,
                             int level) const;

  /// Number of distinct values materialized in `phase`.
  size_t DistinctInPhase(int phase) const;
  size_t MemoryBytes() const;
  int num_phases() const { return static_cast<int>(phases_.size()); }

 private:
  Result<int64_t> PhaseKey(const Value& value, int phase) const;
  Result<Bitmap> CollectInterval(int max_level,
                                 const LeafInterval& interval) const;

  const ColumnDef& column_;
  /// phases_[p]: leaf-interval-lo -> bitmap of row ids.
  std::vector<std::map<int64_t, Bitmap>> phases_;
};

}  // namespace instantdb

#endif  // INSTANTDB_INDEX_BITMAP_INDEX_H_
