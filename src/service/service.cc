#include "service/service.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <string_view>

#include "common/clock.h"
#include "common/strings.h"
#include "degrade/degradation_engine.h"
#include "util/worker_pool.h"
#include "wal/wal_manager.h"

namespace instantdb {

ServiceFrontEnd::ServiceFrontEnd(Database* db, ServiceOptions options)
    : db_(db), options_(options), clock_(db->clock()) {
  for (size_t c = 0; c < kNumServiceClasses; ++c) {
    const double w = options_.per_class_weights[c];
    weights_[c] = w > 0 ? w : 1.0;
  }
  // The degradation floor: tokens only priority (degrader) dispatches can
  // take. Keep at least one token normal-visible so query fan-out is never
  // structurally impossible (at pool size 1 the degrader drains on its own
  // caller thread anyway and needs no reserve).
  WorkerPool* pool = db_->worker_pool();
  const size_t max_reserve = pool->size() > 0 ? pool->size() - 1 : 0;
  pool->SetReserved(
      std::min(options_.reserved_degradation_workers, max_reserve));
  db_->set_pre_close_hook([this] { Shutdown(); });
}

ServiceFrontEnd::~ServiceFrontEnd() {
  // Detach from the database before tearing down so a racing Close cannot
  // call into a dying object; then drain ourselves in case Close never ran.
  db_->set_pre_close_hook(nullptr);
  Shutdown();
  db_->worker_pool()->SetReserved(0);
}

bool ServiceFrontEnd::StatementIsWrite(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  size_t j = i;
  while (j < sql.size() && std::isalpha(static_cast<unsigned char>(sql[j]))) {
    ++j;
  }
  const std::string_view word(sql.data() + i, j - i);
  return EqualsIgnoreCase(word, "INSERT") || EqualsIgnoreCase(word, "DELETE") ||
         EqualsIgnoreCase(word, "UPDATE") || EqualsIgnoreCase(word, "CREATE") ||
         EqualsIgnoreCase(word, "DROP");
}

PressureState ServiceFrontEnd::SamplePressure() {
  const Micros now = clock_->NowMicros();
  {
    std::lock_guard<std::mutex> lock(pressure_mu_);
    if (have_pressure_sample_ && options_.pressure_refresh > 0 &&
        now >= last_pressure_sample_ &&
        now - last_pressure_sample_ < options_.pressure_refresh) {
      return cached_pressure_;
    }
  }
  PressureState p;
  p.wal_sync_waiters = db_->wal()->SyncWaiters();
  WorkerPool* pool = db_->worker_pool();
  const size_t free = pool->free_workers();
  const size_t reserved = pool->reserved();
  p.pool_free_workers = free > reserved ? free - reserved : 0;
  p.degradation_overdue_units = db_->degradation()->OverdueUnits(now);
  p.wal_pressure = p.wal_sync_waiters >= options_.wal_waiters_high;
  p.pool_pressure = p.pool_free_workers == 0;
  p.degradation_pressure =
      p.degradation_overdue_units >= options_.degradation_backlog_high;
  p.score = (p.wal_pressure ? 1 : 0) + (p.pool_pressure ? 1 : 0) +
            (p.degradation_pressure ? 1 : 0);
  std::lock_guard<std::mutex> lock(pressure_mu_);
  cached_pressure_ = p;
  last_pressure_sample_ = now;
  have_pressure_sample_ = true;
  return p;
}

bool ServiceFrontEnd::ShouldShed(ServiceClass cls, bool is_write,
                                 int score) const {
  if (score <= 0) return false;
  const int n = static_cast<int>(kNumServiceClasses);
  const int ci = static_cast<int>(cls);
  // Writes shed one rung before reads: with score s the s lowest classes
  // lose writes but only the s-1 lowest lose reads — kHigh reads survive
  // even a full-score ladder.
  const int threshold = is_write ? n - score : n - score + 1;
  return ci >= threshold;
}

int ServiceFrontEnd::NextClassLocked() const {
  int best = -1;
  double best_vtime = 0;
  for (size_t c = 0; c < kNumServiceClasses; ++c) {
    if (queues_[c].empty()) continue;
    const double vtime = static_cast<double>(served_[c]) / weights_[c];
    // Strict < keeps the earlier (higher-priority) class on ties.
    if (best < 0 || vtime < best_vtime) {
      best = static_cast<int>(c);
      best_vtime = vtime;
    }
  }
  return best;
}

void ServiceFrontEnd::RecordQueueDepth(size_t depth) {
  std::atomic<uint64_t>& hwm = db_->service_counters()->max_queue_depth;
  uint64_t seen = hwm.load(std::memory_order_relaxed);
  while (seen < depth &&
         !hwm.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
}

Status ServiceFrontEnd::Admit(ServiceClass cls, bool is_write,
                              Micros deadline) {
  Database::ServiceCounters* counters = db_->service_counters();
  counters->submitted.fetch_add(1, std::memory_order_relaxed);
  const size_t ci = static_cast<size_t>(cls);
  // Pressure shed before any queueing: under saturation the useful feedback
  // is an immediate Overloaded, not a slot in a queue that will not drain.
  const PressureState pressure = SamplePressure();
  if (ShouldShed(cls, is_write, pressure.score)) {
    counters->rejected_overload.fetch_add(1, std::memory_order_relaxed);
    return Status::Overloaded(is_write ? "backpressure: write shed"
                                       : "backpressure: read shed");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    counters->rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    return Status::Shutdown("service is shut down");
  }
  if (deadline != 0 && clock_->NowMicros() >= deadline) {
    counters->rejected_deadline.fetch_add(1, std::memory_order_relaxed);
    counters->timeouts.fetch_add(1, std::memory_order_relaxed);
    return Status::Timeout("deadline expired before admission");
  }
  // No barging: immediate admission only when nobody is queued ahead.
  if (running_ < options_.max_concurrent && total_queued_ == 0) {
    ++running_;
    ++served_[ci];
    counters->admitted.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  if (queues_[ci].size() >= options_.queue_depth) {
    counters->rejected_overload.fetch_add(1, std::memory_order_relaxed);
    return Status::Overloaded("admission queue full");
  }
  Waiter self(cls);
  queues_[ci].push_back(&self);
  ++total_queued_;
  counters->queued.fetch_add(1, std::memory_order_relaxed);
  RecordQueueDepth(total_queued_);
  const auto remove_self = [&] {
    std::deque<Waiter*>& q = queues_[ci];
    q.erase(std::find(q.begin(), q.end(), &self));
    --total_queued_;
  };
  for (;;) {
    if (running_ < options_.max_concurrent &&
        NextClassLocked() == static_cast<int>(ci) &&
        queues_[ci].front() == &self) {
      remove_self();
      ++running_;
      ++served_[ci];
      counters->admitted.fetch_add(1, std::memory_order_relaxed);
      // More slots may be assignable to the next queued waiter.
      if (running_ < options_.max_concurrent && total_queued_ > 0) {
        cv_.notify_all();
      }
      return Status::OK();
    }
    if (shutdown_) {
      remove_self();
      counters->rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
      cv_.notify_all();  // Shutdown() waits for the queues to drain.
      return Status::Shutdown("service shut down while queued");
    }
    if (deadline != 0 && clock_->NowMicros() >= deadline) {
      remove_self();
      counters->rejected_deadline.fetch_add(1, std::memory_order_relaxed);
      counters->timeouts.fetch_add(1, std::memory_order_relaxed);
      cv_.notify_all();  // Our departure may unblock a different class head.
      return Status::Timeout("deadline expired while queued");
    }
    if (deadline == 0) {
      cv_.wait(lock);
    } else {
      // Bounded park so a wall-clock deadline fires without a notifier (a
      // VirtualClock advances from test threads, which notify anyway).
      cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
  }
}

void ServiceFrontEnd::Finish() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_all();
}

Status ServiceFrontEnd::Run(Session* session, ServiceClass cls, bool is_write,
                            const std::function<Status(Session*)>& fn,
                            const CancelToken* cancel, Micros deadline) {
  if (deadline == 0 && options_.default_deadline != 0) {
    deadline = clock_->NowMicros() + options_.default_deadline;
  }
  Status admit = Admit(cls, is_write, deadline);
  if (!admit.ok()) return admit;
  // Wire the statement budget into the session's scan options for the
  // duration; the caller's own settings survive.
  ScanOptions& scan = session->scan_options();
  const Micros saved_deadline = scan.deadline;
  const CancelToken* saved_cancel = scan.cancel;
  if (deadline != 0) scan.deadline = deadline;
  if (cancel != nullptr) scan.cancel = cancel;
  Status status = fn(session);
  scan.deadline = saved_deadline;
  scan.cancel = saved_cancel;
  Finish();
  Database::ServiceCounters* counters = db_->service_counters();
  if (status.IsTimeout()) {
    counters->timeouts.fetch_add(1, std::memory_order_relaxed);
  }
  if (status.IsAborted() && cancel != nullptr && cancel->cancelled()) {
    counters->cancelled.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

Result<QueryResult> ServiceFrontEnd::Execute(Session* session,
                                             const std::string& sql,
                                             ServiceClass cls,
                                             const CancelToken* cancel,
                                             Micros deadline) {
  QueryResult out;
  Status status = Run(
      session, cls, StatementIsWrite(sql),
      [&](Session* s) -> Status {
        Result<QueryResult> result = s->Execute(sql);
        if (!result.ok()) return result.status();
        out = std::move(*result);
        return Status::OK();
      },
      cancel, deadline);
  if (!status.ok()) return status;
  return out;
}

void ServiceFrontEnd::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
  cv_.wait(lock, [&] { return total_queued_ == 0 && running_ == 0; });
}

}  // namespace instantdb
