#ifndef INSTANTDB_SERVICE_SERVICE_H_
#define INSTANTDB_SERVICE_SERVICE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>

#include "common/cancel.h"
#include "common/options.h"
#include "common/status.h"
#include "db/database.h"
#include "query/session.h"

namespace instantdb {

/// Snapshot of the backpressure signals admission reads (sampled at most
/// once per ServiceOptions::pressure_refresh so a hot admission path does
/// not hammer the engine's locks). Each boolean is one rung of the shed
/// ladder; `score` is how many are lit.
struct PressureState {
  /// Committers parked inside WAL group-commit sync (leaders + followers).
  size_t wal_sync_waiters = 0;
  /// Worker-pool tokens a NORMAL dispatch could take right now (the
  /// degradation reserve is excluded — it is not available to queries).
  size_t pool_free_workers = 0;
  /// Degradation units whose phase deadline has already passed.
  size_t degradation_overdue_units = 0;
  bool wal_pressure = false;
  bool pool_pressure = false;
  bool degradation_pressure = false;
  /// Number of lit signals, in [0, 3]. The shed ladder: with score s,
  /// writes are shed for the s lowest-priority classes and reads for the
  /// s-1 lowest — writes always shed one rung before reads, low priority
  /// before high, and kHigh reads are never pressure-shed (only queue
  /// limits stop them).
  int score = 0;
};

/// \brief Overload-safe multiplexing front end over one Database.
///
/// Statements execute on the submitting caller's thread — the front end
/// adds no worker threads; it decides only WHO may run and WHEN:
///
///  - Admission control: at most ServiceOptions::max_concurrent statements
///    run at once. Excess submissions park in a per-class FIFO (at most
///    queue_depth deep each); a full queue rejects with Status::Overloaded
///    immediately, so callers learn to back off instead of piling up.
///  - Weighted fair draining: freed slots go to the queued class with the
///    smallest virtual time served/weight (ties to the higher-priority
///    class), so kHigh drains per_class_weights[0]/per_class_weights[2]
///    times faster than kLow without ever starving it. No barging: an
///    arrival never overtakes a non-empty queue.
///  - Backpressure shedding: saturation signals from the layers below (WAL
///    sync depth, worker-pool exhaustion, overdue degradation backlog)
///    shed work BEFORE it queues — see PressureState.
///  - Deadlines & cancellation: Run wires an absolute deadline and an
///    optional CancelToken into the session's ScanOptions; scans check
///    them at morsel-claim granularity and return partial-safe
///    Status::Timeout / Status::Aborted.
///  - Degradation floor: the constructor reserves
///    reserved_degradation_workers pool tokens that only the degradation
///    engine's priority dispatches can take, so timely deletion keeps its
///    deadline even at 100% query load.
///
/// The front end registers itself as the Database's pre-close hook:
/// Database::Close() first drains queued statements with Status::Shutdown
/// and waits for in-flight ones, so close never races live queries.
class ServiceFrontEnd {
 public:
  explicit ServiceFrontEnd(Database* db, ServiceOptions options = {});
  ~ServiceFrontEnd();

  ServiceFrontEnd(const ServiceFrontEnd&) = delete;
  ServiceFrontEnd& operator=(const ServiceFrontEnd&) = delete;

  /// Admits, executes `sql` on `session` (caller's thread), releases the
  /// slot. `deadline` is absolute on the database clock (0 = use
  /// options().default_deadline relative to now; 0 default = none).
  Result<QueryResult> Execute(Session* session, const std::string& sql,
                              ServiceClass cls = ServiceClass::kNormal,
                              const CancelToken* cancel = nullptr,
                              Micros deadline = 0);

  /// General admission-wrapped execution: admits under `cls`, wires
  /// deadline/cancel into the session's scan options for the duration
  /// (saving and restoring the caller's settings), runs `fn`, releases the
  /// slot. `is_write` selects the write rung of the shed ladder.
  Status Run(Session* session, ServiceClass cls, bool is_write,
             const std::function<Status(Session*)>& fn,
             const CancelToken* cancel = nullptr, Micros deadline = 0);

  /// Current (possibly cached) backpressure snapshot.
  PressureState SamplePressure();

  /// Rejects everything queued with Status::Shutdown, refuses new
  /// submissions, and blocks until in-flight statements finish.
  /// Idempotent; invoked by Database::Close via the pre-close hook and
  /// again by the destructor.
  void Shutdown();

  const ServiceOptions& options() const { return options_; }

  /// Conservative keyword sniff (no parse): INSERT/DELETE/UPDATE/CREATE/
  /// DROP statements take the write rung of the shed ladder.
  static bool StatementIsWrite(const std::string& sql);

 private:
  /// A parked submission: stack-allocated in Admit, linked into its class
  /// queue by pointer, admitted or rejected under mu_.
  struct Waiter {
    explicit Waiter(ServiceClass c) : cls(c) {}
    ServiceClass cls;
  };

  Status Admit(ServiceClass cls, bool is_write, Micros deadline);
  void Finish();
  /// Queued class with the smallest virtual time (served/weight), ties to
  /// the higher-priority index; -1 when every queue is empty. mu_ held.
  int NextClassLocked() const;
  bool ShouldShed(ServiceClass cls, bool is_write, int score) const;
  void RecordQueueDepth(size_t depth);

  Database* const db_;
  const ServiceOptions options_;
  Clock* const clock_;
  /// Sanitized per_class_weights (non-positive entries become 1).
  double weights_[kNumServiceClasses];

  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  size_t running_ = 0;
  size_t total_queued_ = 0;
  std::deque<Waiter*> queues_[kNumServiceClasses];
  /// Statements served per class, the numerator of each virtual time.
  uint64_t served_[kNumServiceClasses] = {};

  std::mutex pressure_mu_;
  PressureState cached_pressure_;
  Micros last_pressure_sample_ = 0;
  bool have_pressure_sample_ = false;
};

}  // namespace instantdb

#endif  // INSTANTDB_SERVICE_SERVICE_H_
