#ifndef INSTANTDB_TXN_LOCK_MANAGER_H_
#define INSTANTDB_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace instantdb {

enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

/// Lockable resources. Degradation steps lock the *head* of one state store
/// (kStore), so a step conflicts only with readers of that store, not with
/// inserts (which append to phase 0's tail under their own row locks) nor
/// with readers of other accuracy levels — this is what keeps the paper's
/// degradation/reader interference bounded (experiment B8).
struct LockKey {
  enum class Kind : uint8_t { kTable = 0, kRow = 1, kStore = 2 };

  TableId table = 0;
  Kind kind = Kind::kTable;
  uint64_t id = 0;  // row id, or (partition << 32)|(column << 16)|phase

  static LockKey Table(TableId table) { return {table, Kind::kTable, 0}; }
  static LockKey Row(TableId table, RowId row) {
    return {table, Kind::kRow, row};
  }
  /// Store keys carry the table partition so degradation steps on distinct
  /// partitions of the same (column, phase) never conflict — that is what
  /// lets the degradation worker pool run them concurrently.
  static LockKey Store(TableId table, int column, int phase,
                       uint32_t partition = 0) {
    return {table, Kind::kStore,
            (static_cast<uint64_t>(partition) << 32) |
                (static_cast<uint64_t>(column) << 16) |
                static_cast<uint64_t>(phase)};
  }

  bool operator==(const LockKey& other) const {
    return table == other.table && kind == other.kind && id == other.id;
  }
};

struct LockKeyHash {
  size_t operator()(const LockKey& key) const {
    size_t h = std::hash<uint64_t>()(key.id);
    h ^= std::hash<uint32_t>()(key.table) + 0x9e3779b97f4a7c15ULL + (h << 6);
    h ^= static_cast<size_t>(key.kind) * 0x100000001b3ULL;
    return h;
  }
};

/// \brief Strict two-phase locking with wait-die deadlock avoidance.
///
/// Wait-die: on conflict, a requester older (smaller txn id) than every
/// conflicting holder blocks; a younger requester is killed immediately
/// (Status::Aborted) and must restart. This guarantees no deadlock cycles
/// while letting the degrader (which runs many short system transactions)
/// coexist with long readers.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades to) `mode`. Returns OK when granted, Aborted for
  /// wait-die victims. Re-acquiring an already-held compatible lock is a
  /// no-op.
  Status Acquire(uint64_t txn_id, const LockKey& key, LockMode mode);

  /// Releases one lock (no-op if not held).
  void Release(uint64_t txn_id, const LockKey& key);

  /// Releases everything `txn_id` holds (commit/abort).
  void ReleaseAll(uint64_t txn_id);

  /// Locks currently held by `txn_id` (diagnostics/tests).
  std::vector<LockKey> HeldBy(uint64_t txn_id) const;

  struct Stats {
    uint64_t acquisitions = 0;
    uint64_t waits = 0;          // times a request blocked
    uint64_t die_aborts = 0;     // wait-die victims
  };
  Stats stats() const;

 private:
  struct LockState {
    std::map<uint64_t, LockMode> holders;

    bool CompatibleWith(uint64_t txn_id, LockMode mode) const;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<LockKey, LockState, LockKeyHash> locks_;
  std::unordered_map<uint64_t, std::vector<LockKey>> held_;
  Stats stats_;
};

}  // namespace instantdb

#endif  // INSTANTDB_TXN_LOCK_MANAGER_H_
