#ifndef INSTANTDB_TXN_TRANSACTION_H_
#define INSTANTDB_TXN_TRANSACTION_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "txn/lock_manager.h"
#include "wal/log_record.h"
#include "wal/wal_manager.h"

namespace instantdb {

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

/// \brief Transaction context under a deferred-apply, redo-only protocol.
///
/// Statements validate, acquire 2PL locks and enqueue (WAL record, apply
/// closure) pairs; nothing touches shared storage until Commit, which logs
/// every record followed by a COMMIT record and only then runs the apply
/// closures. Consequences:
///  - Abort (user abort or wait-die victim) simply drops the queue — no
///    undo log is ever needed, which matters because undoing a degradation
///    step would mean *resurrecting* an accurate value the engine has
///    promised to forget (paper §III on transaction atomicity vs.
///    degradation).
///  - Crash recovery replays the WAL in two passes: collect committed txn
///    ids, then redo only their records (all redo is idempotent).
///
/// The paper's observation that an inserting transaction "generates effects
/// all along the lifetime of the degradation process" shows up here as
/// system transactions: each degradation step commits separately, long
/// after the inserting transaction committed.
class Transaction {
 public:
  struct PendingOp {
    WalRecord record;
    std::function<Status()> apply;
  };

  Transaction(uint64_t id, LockManager* locks) : id_(id), locks_(locks) {}
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  uint64_t id() const { return id_; }
  TxnState state() const { return state_; }

  /// 2PL lock acquisition (wait-die may return Aborted; the caller must
  /// then Abort() this transaction and retry with a fresh one).
  Status Lock(const LockKey& key, LockMode mode) {
    return locks_->Acquire(id_, key, mode);
  }

  /// Queues one logical write for commit time.
  void AddOp(WalRecord record, std::function<Status()> apply) {
    ops_.push_back({std::move(record), std::move(apply)});
  }

  /// Partition this transaction's inserts into `table` route to, chosen
  /// once per (transaction, table) by `pick` on first use. Batch-affine
  /// allocation: every row a WriteBatch inserts into one table lands in one
  /// partition — and therefore one WAL stream — so the commit touches one
  /// partition latch and costs one log write + one sync instead of
  /// spraying every stream. Tables rotate the pick across transactions to
  /// keep partitions balanced.
  uint32_t InsertPartition(TableId table,
                           const std::function<uint32_t()>& pick) {
    auto it = insert_partition_.find(table);
    if (it == insert_partition_.end()) {
      it = insert_partition_.emplace(table, pick()).first;
    }
    return it->second;
  }

  const std::vector<PendingOp>& ops() const { return ops_; }
  bool read_only() const { return ops_.empty(); }

 private:
  friend class TransactionManager;

  const uint64_t id_;
  LockManager* const locks_;
  TxnState state_ = TxnState::kActive;
  std::vector<PendingOp> ops_;
  std::map<TableId, uint32_t> insert_partition_;  // batch-affine inserts
};

/// \brief Allocates transaction ids, drives commit (log → sync → apply →
/// release) and abort (drop → release).
class TransactionManager {
 public:
  TransactionManager(LockManager* locks, WalManager* wal)
      : locks_(locks), wal_(wal) {}

  std::unique_ptr<Transaction> Begin();

  /// Raises the id allocator above `txn_id` (crash recovery: a reused id
  /// could alias a prior generation's logged records, letting a torn
  /// transaction pass the per-stream record-count check).
  void EnsureTxnIdsAbove(uint64_t txn_id) {
    uint64_t expect = next_txn_id_.load(std::memory_order_relaxed);
    while (txn_id + 1 > expect &&
           !next_txn_id_.compare_exchange_weak(expect, txn_id + 1,
                                               std::memory_order_relaxed)) {
    }
  }

  /// Logs the queued records + COMMIT, optionally syncs, applies the
  /// closures in order, and releases all locks.
  Status Commit(Transaction* txn, bool sync = false);

  /// Drops queued work and releases locks. Always succeeds.
  void Abort(Transaction* txn);

  /// Fuzzy-checkpoint begin positions: waits for every in-flight commit to
  /// finish its apply phase, then reads the end of every WAL stream.
  /// Guarantees that every record below the returned per-stream LSNs has
  /// been applied (so a subsequent storage flush covers it) and every
  /// record at or above them will be replayed on recovery — Commit appends
  /// to the WAL before applying, and without this barrier a checkpoint
  /// could slip between the two and lose a durably committed transaction.
  /// Because commits happen entirely inside the shared window, no
  /// transaction straddles the returned vector: its records sit wholly
  /// below or wholly at-or-above it in every stream, which is what lets
  /// recovery verify cross-stream commit atomicity with record counts.
  std::vector<Lsn> CheckpointBeginPositions();

  struct Stats {
    uint64_t started = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
  };
  Stats stats() const;

 private:
  LockManager* const locks_;
  WalManager* const wal_;
  std::atomic<uint64_t> next_txn_id_{1};
  mutable std::mutex mu_;
  /// Held shared across a commit's append+apply window — including the
  /// group-commit durability wait, when the committer parks on its streams'
  /// synced-LSN watermarks; CheckpointBeginPositions takes it exclusively
  /// so "logged but not yet applied" is impossible at the instant the begin
  /// vector is read. The park never holds a stream mutex (the leader's
  /// fdatasync runs with it released), so commits draining under the
  /// barrier cannot deadlock against concurrent appenders.
  mutable std::shared_mutex commit_mu_;
  Stats stats_;
};

}  // namespace instantdb

#endif  // INSTANTDB_TXN_TRANSACTION_H_
