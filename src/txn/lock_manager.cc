#include "txn/lock_manager.h"

#include <algorithm>

namespace instantdb {

bool LockManager::LockState::CompatibleWith(uint64_t txn_id,
                                            LockMode mode) const {
  for (const auto& [holder, held_mode] : holders) {
    if (holder == txn_id) continue;  // self never conflicts (upgrade path)
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::Acquire(uint64_t txn_id, const LockKey& key,
                            LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  bool waited = false;
  for (;;) {
    LockState& state = locks_[key];
    auto self = state.holders.find(txn_id);
    if (self != state.holders.end() &&
        (self->second == mode || self->second == LockMode::kExclusive)) {
      return Status::OK();  // already held at sufficient strength
    }
    if (state.CompatibleWith(txn_id, mode)) {
      const bool first_time = self == state.holders.end();
      state.holders[txn_id] = mode;
      if (first_time) held_[txn_id].push_back(key);
      ++stats_.acquisitions;
      return Status::OK();
    }
    // Wait-die: die unless older than every conflicting holder.
    for (const auto& [holder, held_mode] : state.holders) {
      if (holder == txn_id) continue;
      const bool conflicts =
          mode == LockMode::kExclusive || held_mode == LockMode::kExclusive;
      if (conflicts && txn_id > holder) {
        ++stats_.die_aborts;
        return Status::Aborted("wait-die: lock conflict with older txn");
      }
    }
    if (!waited) {
      waited = true;
      ++stats_.waits;
    }
    cv_.wait(lock);
  }
}

void LockManager::Release(uint64_t txn_id, const LockKey& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = locks_.find(key);
    if (it != locks_.end()) {
      it->second.holders.erase(txn_id);
      if (it->second.holders.empty()) locks_.erase(it);
    }
    auto held = held_.find(txn_id);
    if (held != held_.end()) {
      auto& keys = held->second;
      keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
      if (keys.empty()) held_.erase(held);
    }
  }
  cv_.notify_all();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto held = held_.find(txn_id);
    if (held == held_.end()) return;
    for (const LockKey& key : held->second) {
      auto it = locks_.find(key);
      if (it != locks_.end()) {
        it->second.holders.erase(txn_id);
        if (it->second.holders.empty()) locks_.erase(it);
      }
    }
    held_.erase(held);
  }
  cv_.notify_all();
}

std::vector<LockKey> LockManager::HeldBy(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn_id);
  return it == held_.end() ? std::vector<LockKey>{} : it->second;
}

LockManager::Stats LockManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace instantdb
