#include "txn/transaction.h"

#include <cassert>

namespace instantdb {

std::unique_ptr<Transaction> TransactionManager::Begin() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.started;
  }
  return std::make_unique<Transaction>(
      next_txn_id_.fetch_add(1, std::memory_order_relaxed), locks_);
}

Status TransactionManager::Commit(Transaction* txn, bool sync) {
  assert(txn->state_ == TxnState::kActive);
  if (!txn->ops_.empty()) {
    // The append+apply window must look atomic to CheckpointBeginLsn: a
    // checkpoint begin LSN captured between the two would exclude this
    // durably logged transaction from both the flush and the replay range.
    std::shared_lock<std::shared_mutex> commit_window(commit_mu_);
    // Group commit: every queued record plus the COMMIT marker goes to the
    // log as one buffered write per touched stream (frames encoded before
    // the stream mutex is taken), and durability is a wait on each touched
    // stream's synced-LSN watermark — at most one sync per stream, and
    // under concurrency usually somebody else's: the stream's sync leader
    // absorbs every committer parked on the watermark. AppendCommit stamps
    // the commit frame with the global commit sequence number and
    // per-stream record counts that let sharded recovery order and
    // atomicity-check it.
    WalRecord commit;
    commit.type = WalRecordType::kCommit;
    commit.txn_id = txn->id_;
    std::vector<const WalRecord*> records;
    records.reserve(txn->ops_.size());
    for (Transaction::PendingOp& op : txn->ops_) {
      op.record.txn_id = txn->id_;
      records.push_back(&op.record);
    }
    const Status logged = wal_->AppendCommit(records, &commit, sync);
    if (!logged.ok()) {
      // The commit never became durable and nothing was applied: treat it
      // as an abort so a WAL failure cannot leak 2PL locks for the rest of
      // the process lifetime.
      txn->ops_.clear();
      txn->state_ = TxnState::kAborted;
      locks_->ReleaseAll(txn->id_);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.aborted;
      return logged;
    }
    // Point of no return: the transaction is durable; now surface it.
    for (Transaction::PendingOp& op : txn->ops_) {
      IDB_RETURN_IF_ERROR(op.apply());
    }
  }
  txn->state_ = TxnState::kCommitted;
  locks_->ReleaseAll(txn->id_);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.committed;
  return Status::OK();
}

std::vector<Lsn> TransactionManager::CheckpointBeginPositions() {
  // Exclusive acquisition drains every in-flight commit's append+apply
  // window; while held no new commit can log, so everything below the
  // positions read here is fully applied and no transaction straddles them.
  std::unique_lock<std::shared_mutex> barrier(commit_mu_);
  return wal_->StreamEnds();
}

void TransactionManager::Abort(Transaction* txn) {
  if (txn->state_ != TxnState::kActive) return;
  txn->ops_.clear();
  txn->state_ = TxnState::kAborted;
  locks_->ReleaseAll(txn->id_);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.aborted;
}

TransactionManager::Stats TransactionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace instantdb
