#ifndef INSTANTDB_IO_FAULT_ENV_H_
#define INSTANTDB_IO_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/env.h"

namespace instantdb {

/// Which physical operation a programmed fault fires on.
enum class FaultOp {
  kAppend,   // WritableFile::Append
  kWrite,    // RandomRWFile::Write
  kSync,     // WritableFile::Sync/SyncData, RandomRWFile::Sync
  kRename,   // Env::RenameFile
  kAllocate, // WritableFile::Preallocate
};

/// \brief Env wrapper that injects filesystem faults and simulates crashes.
///
/// Capabilities (ISSUE 8):
///  - fail the N-th matching op with an arbitrary status (fsync EIO, ...);
///  - return short writes (a prefix of the data reaches the file, then EIO);
///  - simulate ENOSPC for every write/sync under a directory prefix;
///  - track which bytes are durable (synced) per file and produce a crash
///    image (`SimulateCrashTo`) in which all unsynced data is gone:
///    appendable files are truncated back to their last synced size and
///    unsynced random-access writes are rolled back to their pre-images.
///
/// Metadata operations (rename, remove, truncate, dir creation) are treated
/// as immediately durable — the simulation's focus is losing unsynced *data*
/// (WAL tails, store tails, dirty pages), which is where the durability and
/// privacy contracts are actually at risk. `WriteStringToFile(sync=true)`
/// composites inherit tracking automatically since they run on the wrapped
/// primitives.
///
/// Thread-safe; faults can be armed while a database is live.
class FaultInjectionEnv final : public Env {
 public:
  /// `base` must outlive this env (typically Env::Default()).
  explicit FaultInjectionEnv(Env* base);
  ~FaultInjectionEnv() override;

  // --- fault programming -----------------------------------------------------

  /// Arms a one-shot fault: the `countdown`-th future op of kind `op` whose
  /// path contains `path_substr` (empty = any) fails with `error`.
  /// countdown == 1 means the very next matching op.
  void FailOnce(FaultOp op, int countdown, Status error,
                std::string path_substr = "");

  /// Arms a one-shot short write: the `countdown`-th future append/write
  /// persists only the first half of its payload, then returns EIO.
  void ShortWriteOnce(int countdown, std::string path_substr = "");

  /// Sticky ENOSPC for every append/write/sync/preallocate on paths under
  /// `dir_prefix` until cleared with `ClearDiskFull`.
  void SetDiskFull(const std::string& dir_prefix);
  void ClearDiskFull();

  /// Disarms all one-shot faults (disk-full state is kept).
  void ClearFaults();

  // --- crash simulation ------------------------------------------------------

  /// Copies the tree rooted at `src_dir` to `clone_dir`, then destroys all
  /// unsynced data in the clone: files opened for append are truncated to
  /// their last synced size, unsynced RandomRW writes are reverted to their
  /// pre-images. The live database keeps running — this is the
  /// "power failure on a parallel universe" a recovery test reopens.
  Status SimulateCrashTo(const std::string& src_dir,
                         const std::string& clone_dir);

  /// Forgets all per-file durability tracking (e.g. between test cases).
  void ResetFileStates();

  // --- Env interface ---------------------------------------------------------

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path) override;

  Status CreateDirIfMissing(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveDirRecursive(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomRWFile;

  struct Fault {
    FaultOp op;
    int countdown;        // fires when it reaches 0
    bool short_write;     // persist half the payload, then fail
    Status error;
    std::string path_substr;
  };

  /// One unsynced RandomRW write: what the region held before it.
  struct RWUndo {
    uint64_t offset;
    std::string pre_image;   // bytes previously at [offset, offset+n)
    uint64_t pre_size;       // file size before the write
  };

  /// Durability tracking for one path.
  struct FileState {
    bool tracked_appends = false;  // opened via NewWritable/NewAppendableFile
    uint64_t size = 0;             // logical size after all appends
    uint64_t synced_size = 0;      // bytes guaranteed to survive a crash
    std::vector<RWUndo> rw_undo;   // unsynced RandomRW writes, oldest first
  };

  /// Decides the fate of one op. Returns OK to pass through; a non-OK
  /// status to inject a failure. `*short_bytes` is set to the number of
  /// payload bytes to persist before failing (SIZE_MAX = none / n.a.).
  Status CheckFault(FaultOp op, const std::string& path, size_t payload_len,
                    size_t* short_bytes);

  // FileState hooks called by the wrapper files (take mu_).
  void OnAppend(const std::string& path, uint64_t new_size);
  void OnSync(const std::string& path);
  void OnRWWrite(const std::string& path, uint64_t offset, size_t len);
  void OnRWSync(const std::string& path);

  Env* const base_;
  std::mutex mu_;
  std::vector<Fault> faults_;
  std::string disk_full_prefix_;  // empty = disk not full
  std::map<std::string, FileState> files_;
};

}  // namespace instantdb

#endif  // INSTANTDB_IO_FAULT_ENV_H_
