#include "io/env.h"

#include <algorithm>
#include <utility>

namespace instantdb {

namespace {

/// Forwarding WritableFile that bumps the Env's write/sync counters.
class CountingWritableFile final : public WritableFile {
 public:
  CountingWritableFile(std::unique_ptr<WritableFile> base, Env* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(Slice data) override {
    env_->CountWrite();
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    Status status = base_->Sync();
    env_->CountSync(status.ok());
    return status;
  }
  Status SyncData() override {
    Status status = base_->SyncData();
    env_->CountSync(status.ok());
    return status;
  }
  Status Preallocate(uint64_t bytes) override {
    return base_->Preallocate(bytes);
  }
  Status Close() override { return base_->Close(); }
  uint64_t size() const override { return base_->size(); }

 private:
  std::unique_ptr<WritableFile> base_;
  Env* env_;
};

/// Forwarding RandomRWFile that bumps the Env's write/sync counters.
class CountingRandomRWFile final : public RandomRWFile {
 public:
  CountingRandomRWFile(std::unique_ptr<RandomRWFile> base, Env* env)
      : base_(std::move(base)), env_(env) {}

  Status Write(uint64_t offset, Slice data) override {
    env_->CountWrite();
    return base_->Write(offset, data);
  }
  Status Read(uint64_t offset, size_t n, std::string* scratch,
              Slice* out) const override {
    return base_->Read(offset, n, scratch, out);
  }
  Status Sync() override {
    Status status = base_->Sync();
    env_->CountSync(status.ok());
    return status;
  }
  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  Env* env_;
};

/// Default environment: the POSIX helpers from util/file.h plus counting.
class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    IDB_ASSIGN_OR_RETURN(auto file, instantdb::NewWritableFile(path, truncate));
    return CountWritable(std::move(file), this);
  }
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    IDB_ASSIGN_OR_RETURN(auto file, instantdb::NewAppendableFile(path));
    return CountWritable(std::move(file), this);
  }
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    return instantdb::NewRandomAccessFile(path);
  }
  Result<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path) override {
    IDB_ASSIGN_OR_RETURN(auto file, instantdb::NewRandomRWFile(path));
    return CountRandomRW(std::move(file), this);
  }

  Status CreateDirIfMissing(const std::string& path) override {
    return instantdb::CreateDirIfMissing(path);
  }
  Status CreateDirs(const std::string& path) override {
    return instantdb::CreateDirs(path);
  }
  bool FileExists(const std::string& path) override {
    return instantdb::FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return instantdb::GetFileSize(path);
  }
  Status RemoveFile(const std::string& path) override {
    return instantdb::RemoveFile(path);
  }
  Status RemoveDirRecursive(const std::string& path) override {
    return instantdb::RemoveDirRecursive(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return instantdb::ListDir(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return instantdb::RenameFile(from, to);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return instantdb::TruncateFile(path, size);
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Status Env::WriteStringToFile(const std::string& path, Slice contents,
                              bool sync) {
  IDB_ASSIGN_OR_RETURN(auto file, NewWritableFile(path, /*truncate=*/true));
  IDB_RETURN_IF_ERROR(file->Append(contents));
  if (sync) IDB_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

Result<std::string> Env::ReadFileToString(const std::string& path) {
  IDB_ASSIGN_OR_RETURN(auto file, NewRandomAccessFile(path));
  const uint64_t size = file->Size();
  std::string scratch;
  Slice out;
  IDB_RETURN_IF_ERROR(file->Read(0, size, &scratch, &out));
  if (out.data() == scratch.data() && out.size() == scratch.size()) {
    return scratch;
  }
  return std::string(out.data(), out.size());
}

Status Env::OverwriteRange(const std::string& path, uint64_t offset,
                           uint64_t len) {
  IDB_ASSIGN_OR_RETURN(auto file, NewRandomRWFile(path));
  static constexpr size_t kChunk = 4096;
  const std::string zeros(kChunk, '\0');
  uint64_t done = 0;
  while (done < len) {
    const size_t n = static_cast<size_t>(std::min<uint64_t>(kChunk, len - done));
    IDB_RETURN_IF_ERROR(file->Write(offset + done, Slice(zeros.data(), n)));
    done += n;
  }
  return file->Sync();
}

std::unique_ptr<WritableFile> CountWritable(std::unique_ptr<WritableFile> file,
                                            Env* env) {
  return std::make_unique<CountingWritableFile>(std::move(file), env);
}

std::unique_ptr<RandomRWFile> CountRandomRW(std::unique_ptr<RandomRWFile> file,
                                            Env* env) {
  return std::make_unique<CountingRandomRWFile>(std::move(file), env);
}

}  // namespace instantdb
