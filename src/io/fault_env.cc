#include "io/fault_env.h"

#include <algorithm>
#include <filesystem>
#include <utility>

namespace instantdb {

namespace {
constexpr size_t kNoShortWrite = static_cast<size_t>(-1);

bool PathMatches(const std::string& path, const std::string& substr) {
  return substr.empty() || path.find(substr) != std::string::npos;
}
}  // namespace

/// WritableFile wrapper: consults the env's fault table before every op and
/// feeds the per-path durability tracking that SimulateCrashTo consumes.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultInjectionEnv* env,
                    std::string path)
      : base_(std::move(base)), env_(env), path_(std::move(path)) {}

  Status Append(Slice data) override {
    env_->CountWrite();
    size_t short_bytes = kNoShortWrite;
    Status fault = env_->CheckFault(FaultOp::kAppend, path_, data.size(),
                                    &short_bytes);
    if (!fault.ok()) {
      if (short_bytes != kNoShortWrite && short_bytes > 0) {
        // A torn write: a prefix reaches the file, then the error surfaces.
        if (base_->Append(data.substr(0, short_bytes)).ok()) {
          env_->OnAppend(path_, short_bytes);
        }
      }
      return fault;
    }
    IDB_RETURN_IF_ERROR(base_->Append(data));
    env_->OnAppend(path_, data.size());
    return Status::OK();
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override { return DoSync(/*data_only=*/false); }
  Status SyncData() override { return DoSync(/*data_only=*/true); }
  Status Preallocate(uint64_t bytes) override {
    size_t ignored = kNoShortWrite;
    IDB_RETURN_IF_ERROR(
        env_->CheckFault(FaultOp::kAllocate, path_, 0, &ignored));
    return base_->Preallocate(bytes);
  }
  Status Close() override { return base_->Close(); }
  uint64_t size() const override { return base_->size(); }

 private:
  Status DoSync(bool data_only) {
    size_t ignored = kNoShortWrite;
    Status fault = env_->CheckFault(FaultOp::kSync, path_, 0, &ignored);
    if (!fault.ok()) {
      env_->CountSync(/*ok=*/false);
      return fault;
    }
    Status status = data_only ? base_->SyncData() : base_->Sync();
    env_->CountSync(status.ok());
    if (status.ok()) env_->OnSync(path_);
    return status;
  }

  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
  const std::string path_;
};

/// RandomRWFile wrapper: captures pre-images of every write so a simulated
/// crash can roll unsynced page writes back.
class FaultRandomRWFile final : public RandomRWFile {
 public:
  FaultRandomRWFile(std::unique_ptr<RandomRWFile> base, FaultInjectionEnv* env,
                    std::string path)
      : base_(std::move(base)), env_(env), path_(std::move(path)) {}

  Status Write(uint64_t offset, Slice data) override {
    env_->CountWrite();
    size_t short_bytes = kNoShortWrite;
    Status fault =
        env_->CheckFault(FaultOp::kWrite, path_, data.size(), &short_bytes);
    // Pre-image capture and the write itself are one atomic step so the undo
    // log's order matches the order writes actually hit the file.
    std::lock_guard<std::mutex> lock(write_mu_);
    if (!fault.ok()) {
      if (short_bytes != kNoShortWrite && short_bytes > 0) {
        Slice prefix = data.substr(0, short_bytes);
        env_->OnRWWrite(path_, offset, prefix.size());
        (void)base_->Write(offset, prefix);
      }
      return fault;
    }
    env_->OnRWWrite(path_, offset, data.size());
    return base_->Write(offset, data);
  }
  Status Read(uint64_t offset, size_t n, std::string* scratch,
              Slice* out) const override {
    return base_->Read(offset, n, scratch, out);
  }
  Status Sync() override {
    size_t ignored = kNoShortWrite;
    Status fault = env_->CheckFault(FaultOp::kSync, path_, 0, &ignored);
    if (!fault.ok()) {
      env_->CountSync(/*ok=*/false);
      return fault;
    }
    Status status = base_->Sync();
    env_->CountSync(status.ok());
    if (status.ok()) env_->OnRWSync(path_);
    return status;
  }
  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  FaultInjectionEnv* env_;
  const std::string path_;
  std::mutex write_mu_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base) : base_(base) {}
FaultInjectionEnv::~FaultInjectionEnv() = default;

void FaultInjectionEnv::FailOnce(FaultOp op, int countdown, Status error,
                                 std::string path_substr) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.push_back(Fault{op, countdown, /*short_write=*/false,
                          std::move(error), std::move(path_substr)});
}

void FaultInjectionEnv::ShortWriteOnce(int countdown, std::string path_substr) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.push_back(Fault{FaultOp::kAppend, countdown, /*short_write=*/true,
                          Status::IOError("injected short write"),
                          std::move(path_substr)});
  // The same countdown also arms positional writes: whichever write kind the
  // workload issues first at that count gets torn.
  faults_.push_back(Fault{FaultOp::kWrite, countdown, /*short_write=*/true,
                          Status::IOError("injected short write"),
                          faults_.back().path_substr});
}

void FaultInjectionEnv::SetDiskFull(const std::string& dir_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  disk_full_prefix_ = dir_prefix;
}

void FaultInjectionEnv::ClearDiskFull() {
  std::lock_guard<std::mutex> lock(mu_);
  disk_full_prefix_.clear();
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
}

Status FaultInjectionEnv::CheckFault(FaultOp op, const std::string& path,
                                     size_t payload_len, size_t* short_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  // Sticky disk-full beats one-shot faults: every data-bearing op under the
  // prefix reports ENOSPC until the "disk" is cleared. Syncs pass — with the
  // write already refused there is nothing new to make durable, and the
  // caller's sticky-error handling is driven by the write failure.
  if (!disk_full_prefix_.empty() && op != FaultOp::kSync &&
      path.compare(0, disk_full_prefix_.size(), disk_full_prefix_) == 0) {
    CountInjectedFault();
    return Status::IOError("no space left on device (injected ENOSPC)");
  }
  for (auto it = faults_.begin(); it != faults_.end(); ++it) {
    if (it->op != op || !PathMatches(path, it->path_substr)) continue;
    if (--it->countdown > 0) continue;
    Fault fired = std::move(*it);
    faults_.erase(it);
    CountInjectedFault();
    if (fired.short_write) *short_bytes = payload_len / 2;
    return fired.error;
  }
  return Status::OK();
}

void FaultInjectionEnv::OnAppend(const std::string& path, uint64_t appended) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path].size += appended;
}

void FaultInjectionEnv::OnSync(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& st = files_[path];
  st.synced_size = st.size;
}

void FaultInjectionEnv::OnRWWrite(const std::string& path, uint64_t offset,
                                  size_t len) {
  // Capture what the region holds now so a simulated crash can restore it.
  RWUndo undo;
  undo.offset = offset;
  std::string scratch;
  Slice out;
  uint64_t pre_size = 0;
  if (auto file = base_->NewRandomAccessFile(path); file.ok()) {
    pre_size = (*file)->Size();
    if (offset < pre_size &&
        (*file)->Read(offset, len, &scratch, &out).ok()) {
      undo.pre_image.assign(out.data(), out.size());
    }
  }
  undo.pre_size = pre_size;
  std::lock_guard<std::mutex> lock(mu_);
  files_[path].rw_undo.push_back(std::move(undo));
}

void FaultInjectionEnv::OnRWSync(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path].rw_undo.clear();
}

Status FaultInjectionEnv::SimulateCrashTo(const std::string& src_dir,
                                          const std::string& clone_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::remove_all(clone_dir, ec);
  fs::create_directories(fs::path(clone_dir).parent_path(), ec);
  fs::copy(src_dir, clone_dir,
           fs::copy_options::recursive | fs::copy_options::copy_symlinks, ec);
  if (ec) {
    return Status::IOError("crash clone copy failed: " + ec.message());
  }
  // Snapshot tracking state, then destroy unsynced data in the clone.
  std::map<std::string, FileState> files;
  {
    std::lock_guard<std::mutex> lock(mu_);
    files = files_;
  }
  const std::string prefix = src_dir + "/";
  for (const auto& [path, st] : files) {
    if (path.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string clone_path = clone_dir + "/" + path.substr(prefix.size());
    if (!base_->FileExists(clone_path)) continue;
    // Unsynced appends: the tail past the last successful sync is gone.
    // (This also drops any preallocated-but-unwritten region, which a real
    // crash would leave as garbage the CRC check rejects anyway.)
    if (st.size > st.synced_size) {
      IDB_ASSIGN_OR_RETURN(const uint64_t clone_size,
                           base_->GetFileSize(clone_path));
      if (clone_size > st.synced_size) {
        IDB_RETURN_IF_ERROR(base_->TruncateFile(clone_path, st.synced_size));
      }
    }
    // Unsynced positional writes: roll back newest-first to the pre-images.
    for (auto it = st.rw_undo.rbegin(); it != st.rw_undo.rend(); ++it) {
      IDB_ASSIGN_OR_RETURN(const uint64_t clone_size,
                           base_->GetFileSize(clone_path));
      if (clone_size > it->pre_size) {
        IDB_RETURN_IF_ERROR(base_->TruncateFile(clone_path, it->pre_size));
      }
      if (!it->pre_image.empty()) {
        IDB_ASSIGN_OR_RETURN(auto file, base_->NewRandomRWFile(clone_path));
        IDB_RETURN_IF_ERROR(file->Write(it->offset, it->pre_image));
        IDB_RETURN_IF_ERROR(file->Sync());
      }
    }
  }
  return Status::OK();
}

void FaultInjectionEnv::ResetFileStates() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  IDB_ASSIGN_OR_RETURN(auto file, base_->NewWritableFile(path, truncate));
  {
    std::lock_guard<std::mutex> lock(mu_);
    FileState& st = files_[path];
    st.tracked_appends = true;
    if (truncate) {
      // O_TRUNC is metadata, treated as immediately durable.
      st.size = 0;
      st.synced_size = 0;
      st.rw_undo.clear();
    } else {
      const uint64_t existing = file->size();
      if (st.size == 0 && st.synced_size == 0) st.synced_size = existing;
      st.size = existing;
      st.synced_size = std::min(st.synced_size, st.size);
    }
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(std::move(file), this, path));
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewAppendableFile(
    const std::string& path) {
  IDB_ASSIGN_OR_RETURN(auto file, base_->NewAppendableFile(path));
  {
    std::lock_guard<std::mutex> lock(mu_);
    FileState& st = files_[path];
    st.tracked_appends = true;
    const uint64_t existing = file->size();
    if (st.size == 0 && st.synced_size == 0) st.synced_size = existing;
    st.size = existing;
    st.synced_size = std::min(st.synced_size, st.size);
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(std::move(file), this, path));
}

Result<std::unique_ptr<RandomAccessFile>> FaultInjectionEnv::NewRandomAccessFile(
    const std::string& path) {
  return base_->NewRandomAccessFile(path);
}

Result<std::unique_ptr<RandomRWFile>> FaultInjectionEnv::NewRandomRWFile(
    const std::string& path) {
  IDB_ASSIGN_OR_RETURN(auto file, base_->NewRandomRWFile(path));
  return std::unique_ptr<RandomRWFile>(
      std::make_unique<FaultRandomRWFile>(std::move(file), this, path));
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& path) {
  return base_->CreateDirIfMissing(path);
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  return base_->CreateDirs(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  IDB_RETURN_IF_ERROR(base_->RemoveFile(path));
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::RemoveDirRecursive(const std::string& path) {
  IDB_RETURN_IF_ERROR(base_->RemoveDirRecursive(path));
  std::lock_guard<std::mutex> lock(mu_);
  const std::string prefix = path + "/";
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first == path || it->first.compare(0, prefix.size(), prefix) == 0) {
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  size_t ignored = kNoShortWrite;
  IDB_RETURN_IF_ERROR(CheckFault(FaultOp::kRename, to, 0, &ignored));
  IDB_RETURN_IF_ERROR(base_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = std::move(it->second);
    files_.erase(it);
  } else {
    files_.erase(to);
  }
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path, uint64_t size) {
  IDB_RETURN_IF_ERROR(base_->TruncateFile(path, size));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.size = size;
    it->second.synced_size = std::min(it->second.synced_size, size);
  }
  return Status::OK();
}

}  // namespace instantdb
