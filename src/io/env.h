#ifndef INSTANTDB_IO_ENV_H_
#define INSTANTDB_IO_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "util/file.h"

namespace instantdb {

/// Snapshot of an Env's I/O activity, surfaced through `Database::stats().io`.
struct IoCounters {
  /// File write operations issued (appends + positional writes), including
  /// the ones a fault injector failed.
  uint64_t writes = 0;
  /// fsync/fdatasync operations issued, including failed ones.
  uint64_t syncs = 0;
  /// Syncs that returned an error. Invariant (asserted by the fault tests):
  /// sync_failures > 0 ⇒ some WAL stream is poisoned or a consumer retried
  /// the failed operation to success (stats().io.retries > 0).
  uint64_t sync_failures = 0;
  /// Faults injected by a FaultInjectionEnv; always 0 on the default Env.
  uint64_t injected_faults = 0;
};

/// \brief The filesystem seam every durability-bearing component routes
/// through (LevelDB/RocksDB idiom).
///
/// `DiskManager`, `WalStream`, `StateStore`, `KeyManager`, `Catalog`, and the
/// table/partition directory management all take an `Env*` and perform every
/// open/read/write/fsync/rename through it, so a test can substitute a
/// `FaultInjectionEnv` (io/fault_env.h) and exercise the recovery paths
/// against short writes, fsync EIO, ENOSPC, and simulated crashes without
/// touching the consumers. The default Env (`Env::Default()`) delegates to
/// the POSIX helpers in util/file.h and only adds counting.
///
/// The composite helpers (`WriteStringToFile`, `ReadFileToString`,
/// `OverwriteRange`) are implemented on top of the virtual primitives, so a
/// wrapping Env automatically sees — and can fail — every physical operation
/// they perform.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide POSIX environment. Never deleted.
  static Env* Default();

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate = true) = 0;
  virtual Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path) = 0;

  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RemoveDirRecursive(const std::string& path) = 0;
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  // --- composites over the primitives above ---------------------------------

  /// Writes `contents` to a fresh `path` (truncating), optionally syncing.
  Status WriteStringToFile(const std::string& path, Slice contents, bool sync);
  Result<std::string> ReadFileToString(const std::string& path);
  /// Zero-overwrites `[offset, offset+len)` of `path` and syncs — the
  /// physical erase primitive behind EraseMode::kOverwrite.
  Status OverwriteRange(const std::string& path, uint64_t offset, uint64_t len);

  IoCounters io_counters() const {
    IoCounters c;
    c.writes = writes_.load(std::memory_order_relaxed);
    c.syncs = syncs_.load(std::memory_order_relaxed);
    c.sync_failures = sync_failures_.load(std::memory_order_relaxed);
    c.injected_faults = injected_faults_.load(std::memory_order_relaxed);
    return c;
  }

  void CountWrite() { writes_.fetch_add(1, std::memory_order_relaxed); }
  void CountSync(bool ok) {
    syncs_.fetch_add(1, std::memory_order_relaxed);
    if (!ok) sync_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountInjectedFault() {
    injected_faults_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> sync_failures_{0};
  std::atomic<uint64_t> injected_faults_{0};
};

/// Wraps file handles so the owning Env's counters see every write and sync.
/// Shared by PosixEnv and FaultInjectionEnv (which layers fault checks on
/// top before delegating).
std::unique_ptr<WritableFile> CountWritable(std::unique_ptr<WritableFile> file,
                                            Env* env);
std::unique_ptr<RandomRWFile> CountRandomRW(std::unique_ptr<RandomRWFile> file,
                                            Env* env);

}  // namespace instantdb

#endif  // INSTANTDB_IO_ENV_H_
